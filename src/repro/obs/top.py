"""``python -m repro.obs top`` — the operator console's terminal face.

A curses monitor over the same :class:`~repro.obs.console.ConsoleSnapshot`
the web dashboard renders: one row per (workload, machine, engine)
trajectory with a steps/s sparkline and its regression flag, the most
recent regressions, and the farm front door's live counters.

Rendering is split from the terminal: :func:`render_lines` is a pure
``snapshot -> list[str]`` function (what the tests drive), and the
curses loop just paints those lines and polls for ``q``.  ``--once``
prints one frame to stdout — no TTY needed, which is also the CI mode.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from repro.obs.console import ConsoleProvider, ConsoleSnapshot, sparkline

__all__ = ["main", "render_lines"]

#: Most regressions shown before "… and N more".
_MAX_REGRESSIONS = 5


def _fmt(value) -> str:
    if value is None:
        return "—"
    number = float(value)
    for unit, div in (("B", 1e9), ("M", 1e6), ("K", 1e3)):
        if abs(number) >= div * 10:
            return f"{number / div:,.1f}{unit}"
    return f"{number:,.0f}"


def _clip(text: str, width: int) -> str:
    return text if len(text) <= width else text[: max(0, width - 1)] + "…"


def render_lines(snapshot: ConsoleSnapshot | dict, width: int = 100) -> list[str]:
    """One frame of the monitor as plain strings (no curses involved)."""
    if isinstance(snapshot, ConsoleSnapshot):
        snapshot = snapshot.to_dict()
    trajectories = snapshot.get("trajectories") or []
    regressions = snapshot.get("regressions") or []
    farm = snapshot.get("farm")

    stamp = time.strftime(
        "%H:%M:%S", time.gmtime(snapshot.get("generated_at") or 0)
    )
    farm_state = "—"
    if farm:
        farm_state = "live" if farm.get("ok") else "OFFLINE"
    lines = [
        _clip(
            f"repro top · {len(trajectories)} trajectories · "
            f"{len(regressions)} regression(s) · farm {farm_state} · {stamp} UTC",
            width,
        ),
        "",
    ]

    label_w = min(
        max([len(t.get("label") or "?") for t in trajectories], default=8), 34
    )
    spark_w = max(8, min(24, width - label_w - 26))
    lines.append(
        _clip(
            f"{'trajectory':<{label_w}}  {'steps/s':>10}  "
            f"{'trend':<{spark_w}}  flag",
            width,
        )
    )
    for trajectory in trajectories:
        values = [p.get("steps_per_s") for p in trajectory.get("points") or []]
        flag = "▼ REG" if trajectory.get("regressed") else ""
        lines.append(
            _clip(
                f"{_clip(trajectory.get('label') or '?', label_w):<{label_w}}  "
                f"{_fmt(trajectory.get('latest_steps_per_s')):>10}  "
                f"{sparkline(values, spark_w):<{spark_w}}  {flag}",
                width,
            )
        )
    if not trajectories:
        lines.append("  (ledger is empty — record a run to populate this view)")

    lines.append("")
    lines.append(f"recent regressions (threshold {snapshot.get('threshold_pct', 20.0):g}%)")
    if regressions:
        for regression in regressions[:_MAX_REGRESSIONS]:
            label = (
                f"{regression.get('workload') or '?'} "
                f"{regression.get('machine') or '?'}/{regression.get('engine') or '?'}"
            )
            lines.append(
                _clip(
                    f"  ▼ {label}: {_fmt(regression.get('steps_per_s'))} vs "
                    f"{_fmt(regression.get('baseline'))} "
                    f"({regression.get('drop_pct', 0):+.1f}%) "
                    f"run {regression.get('run_id')}",
                    width,
                )
            )
        if len(regressions) > _MAX_REGRESSIONS:
            lines.append(f"  … and {len(regressions) - _MAX_REGRESSIONS} more")
    else:
        lines.append("  ✓ none")

    lines.append("")
    if farm is None:
        lines.append(_clip("farm: not attached (pass --farm http://host:port)", width))
    elif not farm.get("ok"):
        lines.append(
            _clip(
                f"farm: OFFLINE at {farm.get('url')} — "
                f"{farm.get('error') or 'poll failed'}",
                width,
            )
        )
    else:
        status = farm.get("status") or {}
        server = status.get("server") or {}
        client = status.get("client") or {}
        pool = client.get("pool") or {}
        alive = pool.get("alive_workers")
        workers = client.get("workers")
        alive_text = f"{alive}/{workers}" if alive is not None else str(workers)
        lines.append(
            _clip(
                f"farm: {farm.get('url')} · workers {alive_text} alive "
                f"({pool.get('workers_respawned', 0)} respawned) · "
                f"in flight {server.get('jobs_in_flight', client.get('in_flight', 0))} · "
                f"queue {pool.get('in_flight', 0)} · "
                f"dedupe {(server.get('dedupe_hit_rate') or 0.0) * 100:.1f}% · "
                f"uptime {_fmt(server.get('uptime_s'))}s",
                width,
            )
        )
    return lines


def _curses_loop(provider: ConsoleProvider, interval: float) -> int:
    import curses

    def _loop(screen):
        curses.curs_set(0)
        screen.nodelay(True)
        screen.timeout(int(interval * 1000))
        snapshot = provider.snapshot()
        while True:
            height, width = screen.getmaxyx()
            screen.erase()
            frame = render_lines(snapshot, width=max(20, width - 1))
            for row, line in enumerate(frame[: height - 2]):
                screen.addnstr(row, 0, line, width - 1)
            screen.addnstr(
                height - 1, 0, f"q quit · refresh {interval:g}s", width - 1
            )
            screen.refresh()
            key = screen.getch()  # also the frame delay (timeout above)
            if key in (ord("q"), ord("Q")):
                return 0
            snapshot = provider.snapshot()

    return curses.wrapper(_loop)


def add_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--once", action="store_true", help="print one frame to stdout and exit"
    )
    parser.add_argument(
        "--ledger",
        metavar="DIR",
        help="ledger root (default: $REPRO_LEDGER / .repro-ledger, falling "
        "back to benchmarks/ledger_seed when empty)",
    )
    parser.add_argument(
        "--farm",
        metavar="URL",
        help="a repro.farm serve base URL to poll for the farm line",
    )
    parser.add_argument(
        "--interval", type=float, default=2.0, help="refresh period (default 2s)"
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=20.0,
        metavar="PCT",
        help="regression threshold in percent (default 20)",
    )
    parser.add_argument(
        "--width", type=int, default=100, help="frame width for --once (default 100)"
    )


def main(args) -> int:
    """``python -m repro.obs top`` (argparse namespace)."""
    from repro.obs.dash import resolve_ledger

    provider = ConsoleProvider(
        ledger=resolve_ledger(args.ledger),
        farm_url=args.farm,
        threshold_pct=args.threshold,
    )
    if args.once:
        try:
            for line in render_lines(provider.snapshot(), width=args.width):
                print(line)
        except BrokenPipeError:
            # downstream closed early (e.g. `top --once | head`); hand the
            # interpreter a sink so its exit-time stdout flush stays quiet
            os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
            return 0
        return 0
    if not sys.stdout.isatty():
        print(
            "error: live mode needs a terminal (use --once for one frame)",
            file=sys.stderr,
        )
        return 2
    try:
        return _curses_loop(provider, args.interval) or 0
    except KeyboardInterrupt:
        return 0


if __name__ == "__main__":  # pragma: no cover - exercised via the CLI
    parser = argparse.ArgumentParser(description="operator console terminal monitor")
    add_arguments(parser)
    raise SystemExit(main(parser.parse_args()))
