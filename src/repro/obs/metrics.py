"""The metrics registry: counters, gauges and fixed-bucket histograms.

This is the aggregate side of the observability layer: where the tracer
records *what happened in order*, the registry records *how much of it
happened*.  The machine stats objects (``ExecutionStats``, ``VaxStats``)
remain the per-run ground truth; :func:`record_machine_run` folds any
finished :class:`~repro.core.api.RunResult` into a registry, which is how
the experiment CLI's ``--metrics`` flag and the farm's per-job manifest
metrics are produced without a second accounting path in the hot loops.
"""

from __future__ import annotations

import dataclasses
import numbers

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_CYCLE_BUCKETS",
    "record_machine_run",
]

#: Decade buckets wide enough for anything from a smoke test to a
#: paper-scale benchmark run (upper bounds, inclusive).
DEFAULT_CYCLE_BUCKETS = tuple(10**k for k in range(3, 11))


@dataclasses.dataclass
class Counter:
    """A monotonically increasing count."""

    name: str
    value: int = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount

    def to_dict(self) -> dict:
        return {"type": "counter", "value": self.value}


@dataclasses.dataclass
class Gauge:
    """A value that can go anywhere; remembers the last set and the max."""

    name: str
    value: float = 0.0
    max_value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value
        self.max_value = max(self.max_value, value)

    def to_dict(self) -> dict:
        return {"type": "gauge", "value": self.value, "max": self.max_value}


class Histogram:
    """A fixed-boundary histogram (cumulative-friendly, Prometheus-style).

    ``buckets`` are inclusive upper bounds; one implicit overflow bucket
    catches everything above the last boundary.  Boundaries are fixed at
    construction so merged histograms are always well-defined.
    """

    def __init__(self, name: str, buckets: tuple = DEFAULT_CYCLE_BUCKETS):
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError("histogram buckets must be a sorted, non-empty sequence")
        self.name = name
        self.buckets = tuple(buckets)
        self.counts = [0] * (len(self.buckets) + 1)
        self.total = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self.total += 1
        self.sum += value
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[index] += 1
                return
        self.counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.sum / self.total if self.total else 0.0

    def to_dict(self) -> dict:
        return {
            "type": "histogram",
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "total": self.total,
            "sum": self.sum,
        }


class MetricsRegistry:
    """A named collection of metrics with create-or-get accessors."""

    def __init__(self):
        self._metrics: dict[str, object] = {}

    def _get(self, name: str, kind: type, factory):
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = factory()
        elif not isinstance(metric, kind):
            raise TypeError(f"metric {name!r} is a {type(metric).__name__}, not a {kind.__name__}")
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter, lambda: Counter(name))

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge, lambda: Gauge(name))

    def histogram(self, name: str, buckets: tuple = DEFAULT_CYCLE_BUCKETS) -> Histogram:
        histogram = self._get(name, Histogram, lambda: Histogram(name, buckets))
        if histogram.buckets != tuple(buckets):
            raise ValueError(f"metric {name!r} already registered with different buckets")
        return histogram

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def to_dict(self) -> dict:
        return {name: self._metrics[name].to_dict() for name in self.names()}

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry into this one (same-name metrics combine)."""
        for name in other.names():
            metric = other._metrics[name]
            if isinstance(metric, Counter):
                self.counter(name).inc(metric.value)
            elif isinstance(metric, Gauge):
                gauge = self.gauge(name)
                gauge.set(metric.value)
                gauge.max_value = max(gauge.max_value, metric.max_value)
            elif isinstance(metric, Histogram):
                mine = self.histogram(name, metric.buckets)
                mine.counts = [a + b for a, b in zip(mine.counts, metric.counts)]
                mine.total += metric.total
                mine.sum += metric.sum

    def render(self) -> str:
        """A human-readable dump, one metric per line."""
        lines = []
        for name in self.names():
            metric = self._metrics[name]
            if isinstance(metric, Counter):
                lines.append(f"{name:<40} {metric.value}")
            elif isinstance(metric, Gauge):
                lines.append(f"{name:<40} {metric.value:g} (max {metric.max_value:g})")
            elif isinstance(metric, Histogram):
                lines.append(
                    f"{name:<40} n={metric.total} mean={metric.mean:.1f} "
                    f"buckets={dict(zip(metric.buckets, metric.counts))}"
                )
        return "\n".join(lines)


def record_machine_run(registry: MetricsRegistry, result, prefix: str | None = None) -> None:
    """Fold one finished machine run into a registry.

    Every integer field of the run's stats becomes (an increment of) a
    same-named counter under ``<machine>.``, plus a run counter and a
    cycles-per-run histogram — which is how the registry *subsumes* the
    ad-hoc stats counters without replacing them as ground truth.
    """
    prefix = prefix or result.machine
    registry.counter(f"{prefix}.runs").inc()
    for name, value in result.stats.to_dict().items():
        if isinstance(value, bool) or not isinstance(value, numbers.Integral):
            continue
        if name == "max_call_depth":
            registry.gauge(f"{prefix}.max_call_depth").set(value)
            continue
        registry.counter(f"{prefix}.{name}").inc(int(value))
    registry.histogram(f"{prefix}.cycles_per_run").observe(result.stats.cycles)
