"""Entry point for ``python -m repro.obs``."""

from repro.obs.cli import main

raise SystemExit(main())
