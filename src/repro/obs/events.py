"""Typed trace events — the vocabulary of the observability layer.

Every producer in the system (the RISC I step loop, the VAX-like step
loop, the compiler driver, the simulation farm) speaks this one event
vocabulary, so one set of exporters and one viewer serve them all.

Timestamps are microseconds on the *trace timeline*.  Simulator events
map simulated cycles onto that timeline through the machine's cycle
period (400 ns for RISC I, 200 ns for the VAX-like baseline); toolchain
and farm events use wall-clock time relative to the tracer's epoch.  The
two domains land on separate tracks (``pid``) in the Chrome exporter, so
mixing them in one trace is well-defined.
"""

from __future__ import annotations

import dataclasses
import enum


class EventKind(str, enum.Enum):
    """Every event type the tracer understands."""

    #: one instruction retired (pc, op, cycle cost)
    RETIRE = "retire"
    #: one data-memory reference (addr, r/w, width)
    MEM_REF = "mem"
    #: register-window overflow trap (windows spilled, call depth)
    WINDOW_OVERFLOW = "win_overflow"
    #: register-window underflow trap (call depth)
    WINDOW_UNDERFLOW = "win_underflow"
    #: machine trap (kind, detail)
    TRAP = "trap"
    #: pipeline-model stall (cause, bubble cycles) — emitted by the
    #: uarch timing model, not the architectural step loop
    PIPE_STALL = "pipe_stall"
    #: procedure call (call-site pc, new depth)
    CALL = "call"
    #: procedure return (pc, new depth)
    RET = "ret"
    #: a timed toolchain phase (compiler pass, assembly, ...)
    PHASE = "phase"
    #: farm job started
    JOB_START = "job_start"
    #: farm job finished (status, wall seconds)
    JOB_FINISH = "job_finish"


#: Kinds produced by a machine's step loop (simulated-time domain).
SIM_KINDS = frozenset(
    {
        EventKind.RETIRE,
        EventKind.MEM_REF,
        EventKind.WINDOW_OVERFLOW,
        EventKind.WINDOW_UNDERFLOW,
        EventKind.TRAP,
        EventKind.CALL,
        EventKind.RET,
        EventKind.PIPE_STALL,
    }
)

#: The default kind filter for call-structure traces: small enough to
#: ring-buffer a long run, rich enough to see the paper's story (calls,
#: returns, window traffic) in Perfetto.
FLOW_KINDS = frozenset(
    {
        EventKind.CALL,
        EventKind.RET,
        EventKind.WINDOW_OVERFLOW,
        EventKind.WINDOW_UNDERFLOW,
        EventKind.TRAP,
    }
)

#: What the source-level profiler consumes: every retired instruction for
#: the cycle histograms, plus the flow kinds for call-stack reconstruction.
#: MEM_REF is deliberately absent — it is the one high-volume kind the
#: profiler does not need.
PROFILE_KINDS = frozenset(FLOW_KINDS | {EventKind.RETIRE})


@dataclasses.dataclass(slots=True)
class Event:
    """One trace event: a kind, a timestamp, and a small payload."""

    kind: EventKind
    #: microseconds on the trace timeline (see module docstring)
    ts: float
    #: program counter for machine events, 0 otherwise
    pc: int = 0
    data: dict = dataclasses.field(default_factory=dict)

    def to_dict(self) -> dict:
        return {"kind": self.kind.value, "ts": round(self.ts, 3), "pc": self.pc, "data": self.data}

    @classmethod
    def from_dict(cls, payload: dict) -> "Event":
        return cls(
            kind=EventKind(payload["kind"]),
            ts=payload["ts"],
            pc=payload.get("pc", 0),
            data=payload.get("data", {}),
        )

    def render(self) -> str:
        """One human-readable line, as printed by ``repro.obs view``."""
        fields = " ".join(f"{key}={value}" for key, value in self.data.items())
        pc = f" pc={self.pc:#010x}" if self.pc else ""
        return f"{self.ts:>14.3f}us  {self.kind.value:<13}{pc}  {fields}".rstrip()
