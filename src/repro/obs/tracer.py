"""The event tracer: a bounded ring buffer of typed events.

Two implementations share one interface:

* :class:`Tracer` records events into a ``collections.deque`` with a hard
  capacity (old events are dropped, and counted, rather than growing
  without bound on a long simulation);
* :class:`NullTracer` is a no-op.  Producers resolve their tracer **once
  at construction** — the machines additionally cache per-kind "wants"
  booleans so the disabled hot path costs one attribute test per
  potential event, not a call.

A tracer is deliberately cheap to interrogate: ``wants(kind)`` is a
frozenset membership test, and every emit helper takes the producer's
native units (simulated cycles for machines, wall microseconds for the
toolchain) so producers do no conversion work of their own beyond one
multiply.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Iterable

from repro.obs.events import Event, EventKind


class Tracer:
    """Records typed events into a bounded ring buffer.

    ``capacity`` bounds memory: once full, the oldest events are evicted
    and ``dropped`` counts them.  ``capacity=None`` removes the bound —
    only sensible for short runs or for consumers (like the profiler's
    streaming tracer) that fold events instead of storing them.  ``kinds``
    filters at the source — a producer asks ``wants(kind)`` before paying
    for an emit.  ``cycle_ns`` maps simulated cycles onto the trace's
    microsecond timeline; set it to the traced machine's cycle period.
    """

    enabled = True

    def __init__(
        self,
        capacity: int | None = 1 << 16,
        kinds: Iterable[EventKind] | None = None,
        cycle_ns: float = 400.0,
    ):
        if capacity is not None and capacity <= 0:
            raise ValueError("tracer capacity must be positive")
        self.events: deque[Event] = deque(maxlen=capacity)
        self.capacity = capacity
        self.dropped = 0
        self.cycle_ns = cycle_ns
        self._wants = frozenset(EventKind) if kinds is None else frozenset(kinds)
        self._epoch = time.perf_counter()

    # -- interrogation ------------------------------------------------------

    def wants(self, kind: EventKind) -> bool:
        return kind in self._wants

    def __len__(self) -> int:
        return len(self.events)

    def now_us(self) -> float:
        """Wall-clock microseconds since this tracer was created."""
        return (time.perf_counter() - self._epoch) * 1e6

    # -- recording ----------------------------------------------------------

    def emit(self, event: Event) -> None:
        events = self.events
        if events.maxlen is not None and len(events) == events.maxlen:
            self.dropped += 1
        events.append(event)

    def _us(self, cycles: int) -> float:
        return cycles * self.cycle_ns / 1000.0

    # machine events (timestamps in simulated cycles) -----------------------

    def retire(self, cycles: int, pc: int, op: str, cost: int) -> None:
        self.emit(
            Event(
                EventKind.RETIRE,
                self._us(cycles),
                pc,
                {"op": op, "cycles": cost, "dur": self._us(cost)},
            )
        )

    def mem_ref(self, cycles: int, pc: int, addr: int, rw: str, width: int) -> None:
        self.emit(
            Event(EventKind.MEM_REF, self._us(cycles), pc, {"addr": addr, "rw": rw, "width": width})
        )

    def call(self, cycles: int, pc: int, depth: int, target: int = 0) -> None:
        self.emit(
            Event(
                EventKind.CALL,
                self._us(cycles),
                pc,
                {"depth": depth, "target": target},
            )
        )

    def ret(self, cycles: int, pc: int, depth: int) -> None:
        self.emit(Event(EventKind.RET, self._us(cycles), pc, {"depth": depth}))

    def window_overflow(
        self, cycles: int, windows: int, depth: int, cost: int = 0
    ) -> None:
        self.emit(
            Event(
                EventKind.WINDOW_OVERFLOW,
                self._us(cycles),
                0,
                {"windows": windows, "depth": depth, "cost": cost},
            )
        )

    def window_underflow(self, cycles: int, depth: int, cost: int = 0) -> None:
        self.emit(
            Event(
                EventKind.WINDOW_UNDERFLOW,
                self._us(cycles),
                0,
                {"depth": depth, "cost": cost},
            )
        )

    def trap(self, cycles: int, pc: int, kind: str, detail: str) -> None:
        self.emit(Event(EventKind.TRAP, self._us(cycles), pc, {"trap": kind, "detail": detail}))

    def pipe_stall(self, cycles: int, pc: int, cause: str, cost: int) -> None:
        """A pipeline-model stall: ``cost`` bubble cycles charged to ``cause``.

        Timestamps are *pipeline-model* cycles on the same cycle-period
        timeline as the architectural events — close to, but not
        interleaved with, the architectural cycle counter.
        """
        self.emit(
            Event(
                EventKind.PIPE_STALL,
                self._us(cycles),
                pc,
                {"cause": cause, "cycles": cost},
            )
        )

    # toolchain / farm events (timestamps in wall microseconds) -------------

    def phase(self, name: str, start_us: float, dur_us: float, **data) -> None:
        self.emit(Event(EventKind.PHASE, start_us, 0, {"name": name, "dur": dur_us, **data}))

    def job_start(self, key: str, describe: str) -> None:
        self.emit(Event(EventKind.JOB_START, self.now_us(), 0, {"key": key, "job": describe}))

    def job_finish(self, key: str, describe: str, status: str, wall_s: float) -> None:
        end = self.now_us()
        self.emit(
            Event(
                EventKind.JOB_FINISH,
                max(end - wall_s * 1e6, 0.0),
                0,
                {"key": key, "job": describe, "status": status, "dur": wall_s * 1e6},
            )
        )

    # -- summarizing --------------------------------------------------------

    def counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for event in self.events:
            counts[event.kind.value] = counts.get(event.kind.value, 0) + 1
        return counts


class NullTracer(Tracer):
    """The disabled tracer: every operation is a no-op.

    Producers resolve ``tracer or NULL_TRACER`` once at construction and
    cache ``wants(...)`` results, so a disabled producer never branches on
    tracer internals per event.
    """

    enabled = False

    def __init__(self):
        super().__init__(capacity=1)
        self._wants = frozenset()

    def wants(self, kind: EventKind) -> bool:
        return False

    def emit(self, event: Event) -> None:  # pragma: no cover - never hot
        pass


#: Shared no-op instance; there is no reason to make another.
NULL_TRACER = NullTracer()
