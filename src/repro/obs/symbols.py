"""PC symbolization: from raw program counters to names and source lines.

The assemblers already know everything this module needs — they publish a
symbol table (label -> address) and, since the toolchain started stamping
``;@line`` / ``;@fn`` markers on generated assembly, a *line table*
mapping each instruction's start address to ``(function, C line)``.  A
:class:`Symbolizer` wraps one :class:`~repro.core.program.Program` and
answers three questions:

* :meth:`function_at` — which function does this PC belong to?
* :meth:`location_at` — which C source line produced this PC (0 if none,
  e.g. hand-written runtime assembly)?
* :meth:`name_for_target` — what is the callee name for a CALL's target
  address?  (Exact match against the line table's function starts and the
  symbol table; call targets land on label addresses, so no floor search
  is needed — but one is done anyway as a fallback for targets that land
  past an entry-mask word or a scheduling quirk.)

Lookups are floor searches over a sorted address array (``bisect``), so a
symbolizer is cheap enough to call once per retired instruction.
"""

from __future__ import annotations

import bisect

from repro.core.program import Program

#: The name reported for a PC no table covers.
UNKNOWN = "<unknown>"


class Symbolizer:
    """Resolves PCs against one loaded :class:`Program`.

    A PC resolves through the line table first (floor lookup: the entry
    at the greatest address <= pc, provided the pc is still inside the
    code segment), then through non-generated code labels as a coarser
    fallback, then to :data:`UNKNOWN`.
    """

    def __init__(self, program: Program):
        self.program = program
        self._code_lo = 0
        self._code_hi = 0
        for segment in program.segments:
            if segment.name == "code":
                self._code_lo, self._code_hi = segment.base, segment.end
                break
        # line table, sorted for floor lookup
        self._addrs = sorted(program.line_table)
        self._entries = [program.line_table[a] for a in self._addrs]
        # label fallback: code-segment, non-local symbols
        self._label_addrs: list[int] = []
        self._label_names: list[str] = []
        for name, address in sorted(program.symbols.items(), key=lambda kv: kv[1]):
            if name.startswith("."):
                continue
            if self._code_lo <= address < self._code_hi:
                self._label_addrs.append(address)
                self._label_names.append(name)
        # function start addresses, for exact call-target naming
        self._func_starts: dict[int, str] = {}
        previous = None
        for address, (func, _line) in zip(self._addrs, self._entries):
            if func and func != previous:
                self._func_starts[address] = func
            previous = func

    def _floor(self, pc: int) -> tuple[str, int] | None:
        if not self._addrs or not (self._code_lo <= pc < self._code_hi):
            return None
        index = bisect.bisect_right(self._addrs, pc) - 1
        if index < 0:
            return None
        return self._entries[index]

    # -- queries ------------------------------------------------------------

    def function_at(self, pc: int) -> str:
        """Name of the function containing ``pc`` (:data:`UNKNOWN` if none)."""
        if not (self._code_lo <= pc < self._code_hi):
            return UNKNOWN
        entry = self._floor(pc)
        if entry is not None and entry[0]:
            return entry[0]
        index = bisect.bisect_right(self._label_addrs, pc) - 1
        if index >= 0:
            return self._label_names[index]
        return UNKNOWN

    def location_at(self, pc: int) -> tuple[str, int]:
        """``(function, source line)`` for ``pc``; line 0 means no C line."""
        entry = self._floor(pc)
        if entry is not None:
            return entry
        return (self.function_at(pc), 0)

    def name_for_target(self, target: int) -> str:
        """Callee name for a call-target address.

        Exact function-start and symbol matches first; otherwise the same
        floor search as :meth:`function_at`.
        """
        name = self._func_starts.get(target)
        if name:
            return name
        for sym, address in self.program.symbols.items():
            if address == target and not sym.startswith("."):
                return sym
        return self.function_at(target)

    def functions(self) -> list[str]:
        """All function names the line table knows, in address order."""
        seen: list[str] = []
        for func, _line in self._entries:
            if func and (not seen or seen[-1] != func):
                if func not in seen:
                    seen.append(func)
        return seen
