"""``repro.obs`` — the cross-cutting observability layer.

Three pieces, one import:

* **Tracing** — :class:`Tracer` records typed events (instruction
  retires, memory references, window overflow/underflow, traps,
  calls/returns, compiler phases, farm jobs) into a bounded ring buffer;
  :data:`NULL_TRACER` is the resolved-once no-op for disabled paths.
* **Metrics** — :class:`MetricsRegistry` holds counters, gauges and
  fixed-bucket histograms; :func:`record_machine_run` folds a finished
  :class:`~repro.core.api.RunResult` into one.
* **Export** — :func:`write_jsonl` for tooling, :func:`write_chrome_trace`
  for Perfetto / ``chrome://tracing``; ``python -m repro.obs`` views and
  summarizes saved traces.

Plus the source-level profiler built on all three: :class:`Symbolizer`
resolves PCs through the toolchain's line tables, :class:`ProfileBuilder`
/ :class:`ProfilingTracer` fold machine events into cycle-conserving
flamegraphs, call graphs and per-C-line annotation, and
``python -m repro.obs profile`` reports them.

And the **run ledger** (:mod:`repro.obs.ledger`) — a persistent,
append-only flight recorder every ``run()`` can opt into (``record=`` or
``$REPRO_LEDGER``); ``python -m repro.obs ledger`` lists, diffs and
regression-checks the recorded runs, and :class:`LedgerView` is the
read-only query API over it (trajectories, latest runs, regressions).

On top of it all sits the **operator console** (:mod:`repro.obs.console`
/ :mod:`repro.obs.dash` / :mod:`repro.obs.top`): ``python -m repro.obs
dash`` serves a self-contained web dashboard over the ledger, the farm's
``GET /status`` and inline flamegraphs (``--once`` writes the static CI
artifact), and ``python -m repro.obs top`` is the curses monitor over
the same :class:`ConsoleSnapshot`.

See ``docs/OBSERVABILITY.md`` for the event schema and overhead numbers.
"""

from repro.obs.console import ConsoleProvider, ConsoleSnapshot, sparkline
from repro.obs.events import FLOW_KINDS, PROFILE_KINDS, SIM_KINDS, Event, EventKind
from repro.obs.exporters import read_jsonl, to_chrome, write_chrome_trace, write_jsonl
from repro.obs.ledger import (
    Ledger,
    LedgerView,
    diff_records,
    find_regressions,
    ledger_context,
)
from repro.obs.metrics import (
    DEFAULT_CYCLE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    record_machine_run,
)
from repro.obs.profile import (
    Profile,
    ProfileBuilder,
    ProfilingTracer,
    profile_events,
    profile_run,
    render_flame_svg,
)
from repro.obs.profiling import span
from repro.obs.record import (
    DEFAULT_INTERVAL,
    Recording,
    advance,
    list_recordings,
    record_run,
)
from repro.obs.symbols import Symbolizer
from repro.obs.tracer import NULL_TRACER, NullTracer, Tracer

__all__ = [
    "ConsoleProvider",
    "ConsoleSnapshot",
    "Counter",
    "DEFAULT_CYCLE_BUCKETS",
    "DEFAULT_INTERVAL",
    "Event",
    "EventKind",
    "FLOW_KINDS",
    "Gauge",
    "Histogram",
    "Ledger",
    "LedgerView",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "PROFILE_KINDS",
    "Profile",
    "ProfileBuilder",
    "ProfilingTracer",
    "Recording",
    "SIM_KINDS",
    "Symbolizer",
    "Tracer",
    "advance",
    "diff_records",
    "find_regressions",
    "ledger_context",
    "list_recordings",
    "profile_events",
    "record_run",
    "profile_run",
    "read_jsonl",
    "record_machine_run",
    "render_flame_svg",
    "span",
    "sparkline",
    "to_chrome",
    "write_chrome_trace",
    "write_jsonl",
]
