"""Execution recording: checkpointed record/replay for time travel.

A :class:`Recording` is everything needed to reconstruct the
architectural state of a finished run at *any* step index: the program
image, the machine configuration, and a periodic series of
:meth:`~repro.core.api.Machine.snapshot` checkpoints.  Because both
execution engines are deterministic and differentially bit-identical,
``restore`` at the nearest checkpoint at-or-below ``k`` followed by
re-execution of the remaining ``k - checkpoint`` steps lands on exactly
the state the original run passed through — the foundation the
:mod:`repro.dbg` time-travel debugger stands on.

The recorder drives the machine with *chunked* ``run()`` calls (the fast
engine, ``max_steps`` = the checkpoint interval, catching
:class:`~repro.core.api.StepLimitExceeded` at each boundary), so
recording costs one snapshot per interval rather than a 7× drop to the
``step()`` loop.  Recordings are single JSONL files under
``.repro-dbg/`` (override with ``$REPRO_DBG_ROOT``), named by the run's
ledger ``run_id`` when the ledger is on, else by content hash — so
``python -m repro.dbg replay <run_id>`` accepts ledger ids directly.
"""

from __future__ import annotations

import dataclasses
import json
import os
import time
from hashlib import sha256
from pathlib import Path

from repro.core.api import (
    StepLimitExceeded,
    pack_bytes,
    resolve_engine,
    resolve_max_steps,
    unpack_bytes,
)
from repro.core.program import Program, Segment
from repro.machine.traps import Trap

__all__ = [
    "DEFAULT_INTERVAL",
    "RECORD_SCHEMA_VERSION",
    "Recording",
    "advance",
    "default_record_root",
    "list_recordings",
    "program_from_dict",
    "program_to_dict",
    "record_run",
]

#: Bump on any backwards-incompatible recording-format change.
RECORD_SCHEMA_VERSION = 1

#: Steps between checkpoints.  At ~10M steps/s simulation speed this is
#: one snapshot (~ms: a zlib pass over memory) every ~10ms of execution,
#: and bounds any ``seek`` to at most 100k re-executed steps.  See
#: ``docs/DEBUGGER.md`` for the tradeoff curve.
DEFAULT_INTERVAL = 100_000


def default_record_root() -> Path:
    """Where recordings live: ``$REPRO_DBG_ROOT`` or ``./.repro-dbg``."""
    return Path(os.environ.get("REPRO_DBG_ROOT") or ".repro-dbg")


# -- program image serialization ----------------------------------------------


def program_to_dict(program: Program) -> dict:
    """A JSON-safe image of a :class:`Program` (segments packed)."""
    return {
        "segments": [
            {"base": seg.base, "name": seg.name, "data": pack_bytes(seg.data)}
            for seg in program.segments
        ],
        "entry": program.entry,
        "symbols": dict(program.symbols),
        "source_map": {str(addr): line for addr, line in program.source_map.items()},
        "line_table": {
            str(addr): [func, line] for addr, (func, line) in program.line_table.items()
        },
        "source_file": program.source_file,
    }


def program_from_dict(payload: dict) -> Program:
    """Invert :func:`program_to_dict`."""
    return Program(
        segments=tuple(
            Segment(base=seg["base"], data=bytes(unpack_bytes(seg["data"])), name=seg["name"])
            for seg in payload["segments"]
        ),
        entry=payload["entry"],
        symbols=dict(payload["symbols"]),
        source_map={int(addr): line for addr, line in payload["source_map"].items()},
        line_table={
            int(addr): (func, line)
            for addr, (func, line) in payload["line_table"].items()
        },
        source_file=payload.get("source_file", ""),
    )


# -- the recording ------------------------------------------------------------


@dataclasses.dataclass
class Recording:
    """One recorded run: program + config + checkpoints + outcome."""

    #: schema/machine/engine/interval/config/workload/run_id/wall_s
    meta: dict
    program: Program
    #: ``[{"step": k, "state": snapshot}, ...]`` ascending, starting at 0
    checkpoints: list[dict]
    #: ``{"outcome": "halt"|"limit"|"trap", "steps": N, "result": ..., "trap": ...}``
    outcome: dict

    @property
    def run_id(self) -> str:
        return self.meta["run_id"]

    @property
    def machine_name(self) -> str:
        return self.meta["machine"]

    @property
    def steps(self) -> int:
        """Total retired instructions (the last reachable step index)."""
        return self.outcome["steps"]

    @property
    def result(self):
        """The recorded :class:`~repro.core.api.RunResult` (halt outcome only)."""
        if self.outcome.get("result") is None:
            return None
        from repro.core.api import RunResult

        return RunResult.from_dict(self.outcome["result"])

    def nearest(self, step: int) -> dict:
        """The checkpoint with the greatest step index <= ``step``."""
        best = self.checkpoints[0]
        for checkpoint in self.checkpoints:
            if checkpoint["step"] > step:
                break
            best = checkpoint
        return best

    def make_machine(self):
        """A fresh machine of the recorded shape with the program loaded."""
        config = self.meta.get("config", {})
        if self.machine_name == "risc1":
            from repro.core.cpu import CPU

            machine = CPU(
                memory_size=config.get("memory_size", 1 << 20),
                num_windows=config.get("num_windows", 8),
                spill_batch=config.get("spill_batch", 1),
            )
        elif self.machine_name == "cisc":
            from repro.baselines.vax.cpu import VaxCPU

            machine = VaxCPU(memory_size=config.get("memory_size", 1 << 20))
        else:
            raise ValueError(f"unknown machine {self.machine_name!r} in recording")
        machine.load(self.program)
        return machine

    def spawn(self, step: int = 0, *, engine: str | None = None):
        """A fresh machine restored to exactly ``step`` (clamped to range)."""
        step = max(0, min(step, self.steps))
        machine = self.make_machine()
        machine.restore(self.nearest(step)["state"])
        return advance(machine, step, engine=engine)

    # -- persistence ----------------------------------------------------------

    def save(self, path: Path | str | None = None, *, root: Path | str | None = None) -> Path:
        """Write the recording as one JSONL file; returns the path."""
        if path is None:
            base = Path(root) if root is not None else default_record_root()
            base.mkdir(parents=True, exist_ok=True)
            path = base / f"{self.run_id}.dbg.jsonl"
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w", encoding="utf-8") as handle:
            handle.write(json.dumps({"kind": "header", **self.meta}) + "\n")
            handle.write(
                json.dumps({"kind": "program", "program": program_to_dict(self.program)})
                + "\n"
            )
            for checkpoint in self.checkpoints:
                handle.write(json.dumps({"kind": "checkpoint", **checkpoint}) + "\n")
            handle.write(json.dumps({"kind": "outcome", **self.outcome}) + "\n")
        return path

    @classmethod
    def load(cls, path: Path | str) -> "Recording":
        """Read a recording written by :meth:`save`."""
        meta: dict | None = None
        program: Program | None = None
        checkpoints: list[dict] = []
        outcome: dict | None = None
        with Path(path).open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                payload = json.loads(line)
                kind = payload.pop("kind", None)
                if kind == "header":
                    meta = payload
                elif kind == "program":
                    program = program_from_dict(payload["program"])
                elif kind == "checkpoint":
                    checkpoints.append(payload)
                elif kind == "outcome":
                    outcome = payload
        if meta is None or program is None or outcome is None or not checkpoints:
            raise ValueError(f"{path}: truncated or not a recording file")
        if meta.get("schema") != RECORD_SCHEMA_VERSION:
            raise ValueError(
                f"{path}: unsupported recording schema {meta.get('schema')!r}"
            )
        return cls(meta=meta, program=program, checkpoints=checkpoints, outcome=outcome)

    @classmethod
    def find(cls, run_id: str, *, root: Path | str | None = None) -> "Recording":
        """Load the recording named by a run id (unique-prefix match)."""
        base = Path(root) if root is not None else default_record_root()
        matches = sorted(base.glob(f"{run_id}*.dbg.jsonl"))
        if not matches:
            raise FileNotFoundError(f"no recording matching {run_id!r} under {base}")
        if len(matches) > 1:
            names = ", ".join(p.name.removesuffix(".dbg.jsonl") for p in matches)
            raise ValueError(f"run id {run_id!r} is ambiguous: {names}")
        return cls.load(matches[0])


def list_recordings(root: Path | str | None = None) -> list[dict]:
    """Headers of every recording under ``root``, newest file last."""
    base = Path(root) if root is not None else default_record_root()
    out: list[dict] = []
    for path in sorted(base.glob("*.dbg.jsonl")):
        try:
            with path.open("r", encoding="utf-8") as handle:
                header = json.loads(handle.readline())
        except (OSError, ValueError):
            continue
        header.pop("kind", None)
        header["path"] = str(path)
        out.append(header)
    return out


# -- recording and replaying --------------------------------------------------


def _machine_config(machine) -> dict:
    config = {"memory_size": machine.memory.size}
    if machine.name == "risc1":
        config["num_windows"] = machine.regs.num_windows
        config["spill_batch"] = machine.regs.spill_batch
    return config


def advance(machine, to_step: int, *, engine: str | None = None):
    """Run a machine forward until ``stats.instructions == to_step``.

    Uses chunked fast-engine execution (each chunk left exactly resumable
    by the ``StepLimitExceeded`` contract).  Stops early at halt; never
    steps a halted machine.  Returns the machine.
    """
    current = machine.stats.instructions
    if to_step < current:
        raise ValueError(f"cannot advance backwards ({current} -> {to_step})")
    while current < to_step and not machine.halted:
        try:
            machine.run(max_steps=to_step - current, engine=engine, record=False)
        except StepLimitExceeded:
            pass
        current = machine.stats.instructions
    return machine


def record_run(
    machine,
    program: Program,
    *,
    interval: int = DEFAULT_INTERVAL,
    max_steps: int | None = None,
    engine: str | None = None,
    record=None,
    workload: str | None = None,
    scale: str | None = None,
) -> Recording:
    """Run ``program`` on ``machine``, checkpointing every ``interval`` steps.

    Returns a :class:`Recording` whatever the outcome — halt, step-limit,
    or trap — so the debugger can always explore the recorded span.  The
    per-chunk ``run()`` calls pass ``record=False``; the finished run is
    offered to the ledger exactly once, here, with the *total* wall time
    (``record=`` / ``$REPRO_LEDGER`` semantics unchanged), and the
    ledger's ``run_id`` names the recording when one is assigned.
    """
    if interval < 1:
        raise ValueError(f"checkpoint interval must be positive, got {interval}")
    limit = resolve_max_steps(None, max_steps)
    engine_name = resolve_engine(engine)
    machine.load(program)
    checkpoints = [{"step": 0, "state": machine.snapshot()}]
    outcome: dict = {"outcome": "limit", "steps": 0, "result": None, "trap": None}
    result = None
    started = time.perf_counter()
    while True:
        done = machine.stats.instructions
        budget = min(interval, limit - done)
        if budget <= 0:
            outcome = {"outcome": "limit", "steps": done, "result": None, "trap": None}
            break
        try:
            result = machine.run(max_steps=budget, engine=engine_name, record=False)
        except StepLimitExceeded:
            checkpoints.append(
                {"step": machine.stats.instructions, "state": machine.snapshot()}
            )
        except Trap as trap:
            outcome = {
                "outcome": "trap",
                "steps": machine.stats.instructions,
                "result": None,
                "trap": {
                    "kind": trap.kind.name,
                    "detail": trap.detail,
                    "pc": trap.pc,
                },
            }
            break
        else:
            outcome = {
                "outcome": "halt",
                "steps": machine.stats.instructions,
                "result": result.to_dict(),
                "trap": None,
            }
            break
    wall_s = time.perf_counter() - started

    run_id = None
    if result is not None:
        from repro.obs.ledger import ledger_context, maybe_record_run

        context = {"source": "dbg"}
        if workload is not None:
            context["workload"] = workload
        if scale is not None:
            context["scale"] = scale
        with ledger_context(**context):
            run_id = maybe_record_run(
                result, engine=engine_name, wall_s=wall_s, record=record
            )
    meta = {
        "schema": RECORD_SCHEMA_VERSION,
        "machine": machine.name,
        "engine": engine_name,
        "interval": interval,
        "config": _machine_config(machine),
        "workload": workload,
        "scale": scale,
        "wall_s": wall_s,
        "run_id": run_id or _content_id(machine.name, program, outcome),
    }
    return Recording(
        meta=meta, program=program, checkpoints=checkpoints, outcome=outcome
    )


def _content_id(machine_name: str, program: Program, outcome: dict) -> str:
    """Deterministic recording name when no ledger id was assigned."""
    material = json.dumps(
        [machine_name, program_to_dict(program), outcome],
        sort_keys=True,
        separators=(",", ":"),
    )
    return "dbg-" + sha256(material.encode()).hexdigest()[:12]
