"""``python -m repro.obs`` — inspect saved traces from the shell.

Subcommands::

    view       print a JSONL trace, one event per line
    summarize  per-kind counts, time span, call/window statistics
    convert    JSONL trace -> Chrome trace_event JSON (for Perfetto)
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.obs.events import EventKind
from repro.obs.exporters import read_jsonl, write_chrome_trace


def _load(path: str):
    events = read_jsonl(path)
    if not events:
        print(f"{path}: no parseable events", file=sys.stderr)
    return events


def _cmd_view(args) -> int:
    events = _load(args.trace)
    kinds = {EventKind(k) for k in args.kind} if args.kind else None
    shown = 0
    for event in events:
        if kinds is not None and event.kind not in kinds:
            continue
        print(event.render())
        shown += 1
        if args.limit is not None and shown >= args.limit:
            remaining = len(events) - shown
            if remaining > 0:
                print(f"... ({remaining} more; raise --limit)")
            break
    return 0


def _cmd_summarize(args) -> int:
    events = _load(args.trace)
    if not events:
        return 1
    counts: dict[str, int] = {}
    max_depth = 0
    spilled_windows = 0
    for event in events:
        counts[event.kind.value] = counts.get(event.kind.value, 0) + 1
        if "depth" in event.data:
            max_depth = max(max_depth, event.data["depth"])
        if event.kind is EventKind.WINDOW_OVERFLOW:
            spilled_windows += event.data.get("windows", 1)
    span_us = events[-1].ts - events[0].ts
    summary = {
        "events": len(events),
        "span_us": round(span_us, 3),
        "by_kind": dict(sorted(counts.items())),
        "max_depth_seen": max_depth,
        "windows_spilled": spilled_windows,
    }
    if args.format == "json":
        print(json.dumps(summary, indent=2, sort_keys=True))
        return 0
    print(f"events        : {summary['events']}")
    print(f"span          : {span_us / 1000.0:.3f} ms (trace timeline)")
    for kind, count in summary["by_kind"].items():
        print(f"  {kind:<14}: {count}")
    if max_depth:
        print(f"max call depth: {max_depth}")
    if counts.get(EventKind.WINDOW_OVERFLOW.value):
        print(f"windows spilt : {spilled_windows}")
    return 0


def _cmd_convert(args) -> int:
    events = _load(args.trace)
    if not events:
        return 1
    records = write_chrome_trace(events, args.output)
    print(f"wrote {records} trace records to {args.output}", file=sys.stderr)
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs", description="inspect saved observability traces"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    view = sub.add_parser("view", help="print a JSONL trace")
    view.add_argument("trace", help="path to a .jsonl trace")
    view.add_argument("--limit", type=int, default=50, help="max events to print (default 50)")
    view.add_argument(
        "--kind",
        action="append",
        choices=[k.value for k in EventKind],
        help="only show these kinds (repeatable)",
    )
    view.set_defaults(func=_cmd_view)

    summarize = sub.add_parser("summarize", help="summarize a JSONL trace")
    summarize.add_argument("trace", help="path to a .jsonl trace")
    summarize.add_argument("--format", choices=("text", "json"), default="text")
    summarize.set_defaults(func=_cmd_summarize)

    convert = sub.add_parser("convert", help="JSONL -> Chrome trace_event JSON")
    convert.add_argument("trace", help="path to a .jsonl trace")
    convert.add_argument("output", help="output .json path (load in Perfetto)")
    convert.set_defaults(func=_cmd_convert)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
