"""``python -m repro.obs`` — inspect saved traces from the shell.

Subcommands::

    view       print a JSONL trace, one event per line
    summarize  per-kind counts, time span, call/window statistics
    convert    JSONL trace -> Chrome trace_event JSON (for Perfetto)
    profile    run a workload under the profiler and print hotspots,
               a collapsed-stack flamegraph, annotated C source or the
               call graph
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.obs.events import EventKind
from repro.obs.exporters import scan_jsonl, write_chrome_trace


def _load(path: str):
    """Read a trace for a CLI command; returns None (after a clear
    diagnostic on stderr) for missing, empty, binary or non-JSONL input
    instead of tracebacking or silently processing nothing."""
    if not Path(path).is_file():
        print(f"error: {path}: no such trace file", file=sys.stderr)
        return None
    try:
        events, skipped = scan_jsonl(path)
    except UnicodeDecodeError:
        print(f"error: {path}: binary data — not a JSONL trace", file=sys.stderr)
        return None
    except OSError as exc:
        print(f"error: {path}: {exc.strerror or exc}", file=sys.stderr)
        return None
    if not events:
        if skipped:
            print(
                f"error: {path}: no parseable events "
                f"({skipped} unrecognized line(s) — not a JSONL trace?)",
                file=sys.stderr,
            )
        else:
            print(f"error: {path}: empty trace (no events recorded)", file=sys.stderr)
        return None
    if skipped:
        print(
            f"warning: {path}: skipped {skipped} malformed line(s) "
            "(truncated or interleaved write?)",
            file=sys.stderr,
        )
    return events


def _cmd_view(args) -> int:
    events = _load(args.trace)
    if events is None:
        return 1
    kinds = {EventKind(k) for k in args.kind} if args.kind else None
    shown = 0
    for event in events:
        if kinds is not None and event.kind not in kinds:
            continue
        print(event.render())
        shown += 1
        if args.limit is not None and shown >= args.limit:
            remaining = len(events) - shown
            if remaining > 0:
                print(f"... ({remaining} more; raise --limit)")
            break
    return 0


def _cmd_summarize(args) -> int:
    events = _load(args.trace)
    if events is None:
        return 1
    counts: dict[str, int] = {}
    max_depth = 0
    spilled_windows = 0
    for event in events:
        counts[event.kind.value] = counts.get(event.kind.value, 0) + 1
        if "depth" in event.data:
            max_depth = max(max_depth, event.data["depth"])
        if event.kind is EventKind.WINDOW_OVERFLOW:
            spilled_windows += event.data.get("windows", 1)
    span_us = events[-1].ts - events[0].ts
    summary = {
        "events": len(events),
        "span_us": round(span_us, 3),
        "by_kind": dict(sorted(counts.items())),
        "max_depth_seen": max_depth,
        "windows_spilled": spilled_windows,
    }
    if args.format == "json":
        print(json.dumps(summary, indent=2, sort_keys=True))
        return 0
    print(f"events        : {summary['events']}")
    print(f"span          : {span_us / 1000.0:.3f} ms (trace timeline)")
    for kind, count in summary["by_kind"].items():
        print(f"  {kind:<14}: {count}")
    if max_depth:
        print(f"max call depth: {max_depth}")
    if counts.get(EventKind.WINDOW_OVERFLOW.value):
        print(f"windows spilt : {spilled_windows}")
    return 0


def _cmd_convert(args) -> int:
    events = _load(args.trace)
    if events is None:
        return 1
    records = write_chrome_trace(events, args.output)
    print(f"wrote {records} trace records to {args.output}", file=sys.stderr)
    return 0


def _cmd_profile(args) -> int:
    # imports deferred: the trace subcommands must not pay for the
    # compiler/simulator import graph
    from repro.cc.driver import compile_program
    from repro.obs.profile import profile_run
    from repro.workloads import ALL_WORKLOADS, parse_workload_spec

    try:
        name, overrides = parse_workload_spec(args.workload)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    source = ALL_WORKLOADS[name].source(**overrides)
    compiled = compile_program(source, target=args.target, filename=f"{name}.c")
    profile, _result = profile_run(compiled, workload=args.workload)
    if args.what == "report":
        text = profile.report(top=args.top)
    elif args.what == "flame":
        text = profile.collapsed()
    elif args.what == "annotate":
        text = profile.annotate()
    else:
        text = profile.callgraph_text(top=args.top)
    if args.output:
        path = Path(args.output)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text, encoding="utf-8")
        print(f"wrote {args.what} for {args.workload} ({args.target}) to {path}", file=sys.stderr)
    else:
        sys.stdout.write(text)
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs", description="inspect saved observability traces"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    view = sub.add_parser("view", help="print a JSONL trace")
    view.add_argument("trace", help="path to a .jsonl trace")
    view.add_argument("--limit", type=int, default=50, help="max events to print (default 50)")
    view.add_argument(
        "--kind",
        action="append",
        choices=[k.value for k in EventKind],
        help="only show these kinds (repeatable)",
    )
    view.set_defaults(func=_cmd_view)

    summarize = sub.add_parser("summarize", help="summarize a JSONL trace")
    summarize.add_argument("trace", help="path to a .jsonl trace")
    summarize.add_argument("--format", choices=("text", "json"), default="text")
    summarize.set_defaults(func=_cmd_summarize)

    convert = sub.add_parser("convert", help="JSONL -> Chrome trace_event JSON")
    convert.add_argument("trace", help="path to a .jsonl trace")
    convert.add_argument("output", help="output .json path (load in Perfetto)")
    convert.set_defaults(func=_cmd_convert)

    profile = sub.add_parser(
        "profile", help="run a workload under the source-level profiler"
    )
    profile.add_argument(
        "what",
        choices=("report", "flame", "annotate", "callgraph"),
        help="flat profile, collapsed-stack flamegraph, annotated C source, or call graph",
    )
    profile.add_argument(
        "--workload",
        required=True,
        metavar="NAME[:ARG]",
        help="workload spec, e.g. towers:10 or bit_matrix_k:N=8,REPS=1",
    )
    profile.add_argument("--target", choices=("risc1", "cisc"), default="risc1")
    profile.add_argument("--top", type=int, default=20, help="rows to show (report/callgraph)")
    profile.add_argument("-o", "--output", help="write to a file instead of stdout")
    profile.set_defaults(func=_cmd_profile)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
