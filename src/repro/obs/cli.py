"""``python -m repro.obs`` — inspect saved traces from the shell.

Subcommands::

    view       print a JSONL trace, one event per line
    summarize  per-kind counts, time span, call/window statistics
    convert    JSONL trace -> Chrome trace_event JSON (for Perfetto)
    profile    run a workload under the profiler and print hotspots,
               a collapsed-stack flamegraph, annotated C source or the
               call graph
    ledger     the persistent run ledger: list/show recorded runs,
               record a fresh one, diff two records field-by-field,
               detect throughput regressions, export, and gc
    dash       the operator console's web dashboard (live server, or
               --once for a static self-contained HTML artifact)
    top        the operator console's curses monitor (same snapshot)
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.obs.events import EventKind
from repro.obs.exporters import scan_jsonl, write_chrome_trace


def _load(path: str):
    """Read a trace for a CLI command; returns None (after a clear
    diagnostic on stderr) for missing, empty, binary or non-JSONL input
    instead of tracebacking or silently processing nothing.  Returns
    ``(events, meta)`` on success; a trace whose writing tracer dropped
    events (ring-buffer overflow) warns loudly here, once, for every
    subcommand."""
    if not Path(path).is_file():
        print(f"error: {path}: no such trace file", file=sys.stderr)
        return None
    try:
        events, skipped, meta = scan_jsonl(path)
    except UnicodeDecodeError:
        print(f"error: {path}: binary data — not a JSONL trace", file=sys.stderr)
        return None
    except OSError as exc:
        print(f"error: {path}: {exc.strerror or exc}", file=sys.stderr)
        return None
    if not events:
        if skipped:
            print(
                f"error: {path}: no parseable events "
                f"({skipped} unrecognized line(s) — not a JSONL trace?)",
                file=sys.stderr,
            )
        else:
            print(f"error: {path}: empty trace (no events recorded)", file=sys.stderr)
        return None
    if skipped:
        print(
            f"warning: {path}: skipped {skipped} malformed line(s) "
            "(truncated or interleaved write?)",
            file=sys.stderr,
        )
    if meta.get("dropped"):
        print(
            f"warning: {path}: TRUNCATED trace — the ring buffer dropped "
            f"{meta['dropped']} event(s) before export; counts and spans "
            "below understate the run",
            file=sys.stderr,
        )
    return events, meta


def _cmd_view(args) -> int:
    loaded = _load(args.trace)
    if loaded is None:
        return 1
    events, _meta = loaded
    kinds = {EventKind(k) for k in args.kind} if args.kind else None
    shown = 0
    for event in events:
        if kinds is not None and event.kind not in kinds:
            continue
        print(event.render())
        shown += 1
        if args.limit is not None and shown >= args.limit:
            remaining = len(events) - shown
            if remaining > 0:
                print(f"... ({remaining} more; raise --limit)")
            break
    return 0


def _cmd_summarize(args) -> int:
    loaded = _load(args.trace)
    if loaded is None:
        return 1
    events, meta = loaded
    counts: dict[str, int] = {}
    max_depth = 0
    spilled_windows = 0
    for event in events:
        counts[event.kind.value] = counts.get(event.kind.value, 0) + 1
        if "depth" in event.data:
            max_depth = max(max_depth, event.data["depth"])
        if event.kind is EventKind.WINDOW_OVERFLOW:
            spilled_windows += event.data.get("windows", 1)
    span_us = events[-1].ts - events[0].ts
    truncated = int(meta.get("dropped", 0))
    summary = {
        "events": len(events),
        "truncated": truncated,
        "span_us": round(span_us, 3),
        "by_kind": dict(sorted(counts.items())),
        "max_depth_seen": max_depth,
        "windows_spilled": spilled_windows,
    }
    if args.format == "json":
        print(json.dumps(summary, indent=2, sort_keys=True))
        return 0
    print(f"events        : {summary['events']}")
    if truncated:
        print(f"truncated     : {truncated} (events dropped by the ring buffer)")
    print(f"span          : {span_us / 1000.0:.3f} ms (trace timeline)")
    for kind, count in summary["by_kind"].items():
        print(f"  {kind:<14}: {count}")
    if max_depth:
        print(f"max call depth: {max_depth}")
    if counts.get(EventKind.WINDOW_OVERFLOW.value):
        print(f"windows spilt : {spilled_windows}")
    return 0


def _cmd_convert(args) -> int:
    loaded = _load(args.trace)
    if loaded is None:
        return 1
    events, _meta = loaded
    records = write_chrome_trace(events, args.output)
    print(f"wrote {records} trace records to {args.output}", file=sys.stderr)
    return 0


def _cmd_profile(args) -> int:
    # imports deferred: the trace subcommands must not pay for the
    # compiler/simulator import graph
    from repro.cc.driver import compile_program
    from repro.obs.profile import profile_run
    from repro.workloads import ALL_WORKLOADS, parse_workload_spec

    try:
        name, overrides = parse_workload_spec(args.workload)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    source = ALL_WORKLOADS[name].source(**overrides)
    compiled = compile_program(source, target=args.target, filename=f"{name}.c")
    profile, _result = profile_run(compiled, workload=args.workload)
    if profile.truncated or profile.counters.get("truncated_rets"):
        print(
            f"warning: profile of {args.workload} is TRUNCATED "
            f"({profile.truncated} event(s) dropped, "
            f"{profile.counters.get('truncated_rets', 0)} unmatched return(s)) — "
            "figures understate the run",
            file=sys.stderr,
        )
    if args.what == "report":
        text = profile.report(top=args.top)
    elif args.what == "flame":
        text = profile.collapsed()
    elif args.what == "annotate":
        text = profile.annotate()
    else:
        text = profile.callgraph_text(top=args.top)
    if args.output:
        path = Path(args.output)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text, encoding="utf-8")
        print(f"wrote {args.what} for {args.workload} ({args.target}) to {path}", file=sys.stderr)
    else:
        sys.stdout.write(text)
    return 0


# -- the run ledger ----------------------------------------------------------


def _open_ledger(args):
    from repro.obs.ledger import Ledger

    return Ledger(args.dir) if args.dir else Ledger()


def _select(ledger, selector: str):
    """Resolve a run-id prefix / negative index, CLI-style (None on error)."""
    try:
        return ledger.get(selector)
    except (KeyError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return None


def _cmd_ledger_list(args) -> int:
    ledger = _open_ledger(args)
    rows = ledger.index()
    for field in ("workload", "machine", "engine", "source"):
        wanted = getattr(args, field)
        if wanted:
            rows = [r for r in rows if r.get(field) == wanted]
    if args.limit is not None:
        rows = rows[-args.limit :]
    if args.format == "json":
        print(json.dumps(rows, indent=2, sort_keys=True))
        return 0
    if not rows:
        print(f"(no ledger records under {ledger.root})", file=sys.stderr)
        return 0
    print(
        f"{'run id':<16} {'when':<19} {'source':<11} {'workload':<18} "
        f"{'machine':<7} {'engine':<9} {'steps/s':>12}"
    )
    for row in rows:
        when = time.strftime(
            "%Y-%m-%d %H:%M:%S", time.localtime(row.get("timestamp") or 0)
        )
        sps = row.get("steps_per_s")
        print(
            f"{str(row.get('run_id', '?')):<16} {when:<19} "
            f"{str(row.get('source') or '-'):<11} {str(row.get('workload') or '-'):<18} "
            f"{str(row.get('machine') or '-'):<7} {str(row.get('engine') or '-'):<9} "
            + (f"{sps:>12,.0f}" if sps else f"{'-':>12}")
        )
    return 0


def _cmd_ledger_show(args) -> int:
    record = _select(_open_ledger(args), args.run)
    if record is None:
        return 1
    print(json.dumps(record, indent=2, sort_keys=True))
    return 0


def _cmd_ledger_record(args) -> int:
    # imports deferred: ledger bookkeeping must not pay for the
    # compiler/simulator import graph
    from repro.cc.driver import compile_program, run_compiled
    from repro.obs.ledger import ledger_context
    from repro.workloads import ALL_WORKLOADS, parse_workload_spec

    ledger = _open_ledger(args)
    try:
        name, overrides = parse_workload_spec(args.workload)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    params = dict(ALL_WORKLOADS[name].bench_params) if args.scale == "bench" else {}
    params.update(overrides)
    compiled = compile_program(
        ALL_WORKLOADS[name].source(**params), target=args.target, filename=f"{name}.c"
    )
    with ledger_context(workload=args.workload, scale=args.scale, source="cli"):
        result = run_compiled(
            compiled, max_steps=args.max_steps, engine=args.engine, record=ledger
        )
    run_id = ledger.index()[-1]["run_id"]
    print(
        f"[{args.workload} on {args.target} ({args.engine or 'default'} engine): "
        f"{result.instructions} instructions, exit {result.exit_code}]",
        file=sys.stderr,
    )
    print(run_id)
    return 0


def _cmd_ledger_diff(args) -> int:
    from repro.obs.ledger import LedgerView

    view = LedgerView(_open_ledger(args))
    try:
        diff = view.diff(args.a, args.b)
    except (KeyError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(
            json.dumps(
                {
                    "a": diff.a,
                    "b": diff.b,
                    "clean": diff.clean,
                    "diverged": {k: list(v) for k, v in diff.diverged.items()},
                    "informational": {
                        k: [str(x) for x in v] for k, v in diff.informational.items()
                    },
                },
                indent=2,
                sort_keys=True,
            )
        )
    else:
        sys.stdout.write(diff.render())
    return 0 if diff.clean else 1


def _cmd_ledger_regressions(args) -> int:
    from repro.obs.ledger import LedgerView

    view = LedgerView(_open_ledger(args))
    records = view.records()
    regressions = view.regressions(
        threshold_pct=args.threshold,
        window=args.window,
        latest_only=not args.all,
        records=records,
    )
    if args.format == "json":
        print(json.dumps([r.to_dict() for r in regressions], indent=2, sort_keys=True))
    elif not regressions:
        print(
            f"no regressions beyond {args.threshold:g}% across "
            f"{len(records)} record(s)"
        )
    else:
        for regression in regressions:
            print(regression.render())
    return 1 if regressions else 0


def _cmd_ledger_export(args) -> int:
    ledger = _open_ledger(args)
    records = ledger.records()
    if args.format == "jsonl":
        text = "".join(json.dumps(r, sort_keys=True) + "\n" for r in records)
    else:
        text = json.dumps(records, indent=2, sort_keys=True) + "\n"
    if args.output == "-":
        sys.stdout.write(text)
    else:
        path = Path(args.output)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text, encoding="utf-8")
        print(f"exported {len(records)} record(s) to {path}", file=sys.stderr)
    return 0


def _cmd_ledger_gc(args) -> int:
    ledger = _open_ledger(args)
    try:
        dropped = ledger.gc(keep=args.keep)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"dropped {dropped} record(s); kept {len(ledger.records())}")
    return 0


# -- the operator console ----------------------------------------------------


def _cmd_dash(args) -> int:
    # imports deferred: the console must not tax the trace subcommands
    from repro.obs import dash

    return dash.main(args)


def _cmd_top(args) -> int:
    from repro.obs import top

    return top.main(args)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs", description="inspect saved observability traces"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    view = sub.add_parser("view", help="print a JSONL trace")
    view.add_argument("trace", help="path to a .jsonl trace")
    view.add_argument("--limit", type=int, default=50, help="max events to print (default 50)")
    view.add_argument(
        "--kind",
        action="append",
        choices=[k.value for k in EventKind],
        help="only show these kinds (repeatable)",
    )
    view.set_defaults(func=_cmd_view)

    summarize = sub.add_parser("summarize", help="summarize a JSONL trace")
    summarize.add_argument("trace", help="path to a .jsonl trace")
    summarize.add_argument("--format", choices=("text", "json"), default="text")
    summarize.set_defaults(func=_cmd_summarize)

    convert = sub.add_parser("convert", help="JSONL -> Chrome trace_event JSON")
    convert.add_argument("trace", help="path to a .jsonl trace")
    convert.add_argument("output", help="output .json path (load in Perfetto)")
    convert.set_defaults(func=_cmd_convert)

    profile = sub.add_parser(
        "profile", help="run a workload under the source-level profiler"
    )
    profile.add_argument(
        "what",
        choices=("report", "flame", "annotate", "callgraph"),
        help="flat profile, collapsed-stack flamegraph, annotated C source, or call graph",
    )
    profile.add_argument(
        "--workload",
        required=True,
        metavar="NAME[:ARG]",
        help="workload spec, e.g. towers:10 or bit_matrix_k:N=8,REPS=1",
    )
    profile.add_argument("--target", choices=("risc1", "cisc"), default="risc1")
    profile.add_argument("--top", type=int, default=20, help="rows to show (report/callgraph)")
    profile.add_argument("-o", "--output", help="write to a file instead of stdout")
    profile.set_defaults(func=_cmd_profile)

    ledger = sub.add_parser(
        "ledger", help="the persistent run ledger (flight recorder)"
    )
    ledger.add_argument(
        "--dir",
        metavar="PATH",
        help="ledger root (default: $REPRO_LEDGER or .repro-ledger)",
    )
    ledger_sub = ledger.add_subparsers(dest="ledger_command", required=True)

    ledger_list = ledger_sub.add_parser("list", help="list recorded runs")
    ledger_list.add_argument("--workload", help="only this workload spec")
    ledger_list.add_argument("--machine", help="only this machine tag")
    ledger_list.add_argument("--engine", help="only this engine")
    ledger_list.add_argument("--source", help="only this record source")
    ledger_list.add_argument("--limit", type=int, help="newest N records")
    ledger_list.add_argument("--format", choices=("text", "json"), default="text")
    ledger_list.set_defaults(func=_cmd_ledger_list)

    ledger_show = ledger_sub.add_parser("show", help="print one full record")
    ledger_show.add_argument("run", help="run-id prefix, or -1 for the latest")
    ledger_show.set_defaults(func=_cmd_ledger_show)

    ledger_record = ledger_sub.add_parser(
        "record", help="run a workload and append its record"
    )
    ledger_record.add_argument(
        "--workload",
        required=True,
        metavar="NAME[:ARG]",
        help="workload spec, e.g. towers:10 or qsort",
    )
    ledger_record.add_argument("--target", choices=("risc1", "cisc"), default="risc1")
    ledger_record.add_argument(
        "--engine",
        choices=("fast", "reference"),
        help="execution engine (default: $REPRO_ENGINE or fast)",
    )
    ledger_record.add_argument(
        "--scale", choices=("default", "bench"), default="default"
    )
    ledger_record.add_argument(
        "--max-steps", type=int, default=500_000_000, help="step budget"
    )
    ledger_record.set_defaults(func=_cmd_ledger_record)

    ledger_diff = ledger_sub.add_parser(
        "diff", help="field-by-field comparison of two records"
    )
    ledger_diff.add_argument("a", help="run-id prefix or negative index (-2, -1, ...)")
    ledger_diff.add_argument("b", help="run-id prefix or negative index")
    ledger_diff.add_argument("--format", choices=("text", "json"), default="text")
    ledger_diff.set_defaults(func=_cmd_ledger_diff)

    ledger_reg = ledger_sub.add_parser(
        "regressions", help="flag throughput drops against each trajectory's baseline"
    )
    ledger_reg.add_argument(
        "--threshold",
        type=float,
        default=20.0,
        metavar="PCT",
        help="flag steps/s drops beyond this percentage (default 20)",
    )
    ledger_reg.add_argument(
        "--window",
        type=int,
        default=5,
        metavar="N",
        help="rolling-baseline window: median of up to N prior runs (default 5)",
    )
    ledger_reg.add_argument(
        "--all",
        action="store_true",
        help="audit every run in every trajectory, not just the newest",
    )
    ledger_reg.add_argument("--format", choices=("text", "json"), default="text")
    ledger_reg.set_defaults(func=_cmd_ledger_regressions)

    ledger_export = ledger_sub.add_parser("export", help="dump all records")
    ledger_export.add_argument("output", help="output path, or - for stdout")
    ledger_export.add_argument("--format", choices=("json", "jsonl"), default="json")
    ledger_export.set_defaults(func=_cmd_ledger_export)

    ledger_gc = ledger_sub.add_parser(
        "gc", help="keep only the newest N records per trajectory"
    )
    ledger_gc.add_argument("--keep", type=int, required=True, metavar="N")
    ledger_gc.set_defaults(func=_cmd_ledger_gc)

    from repro.obs import dash as dash_module
    from repro.obs import top as top_module

    dash = sub.add_parser(
        "dash", help="operator console: web dashboard over ledger/farm/profiler"
    )
    dash_module.add_arguments(dash)
    dash.set_defaults(func=_cmd_dash)

    top = sub.add_parser(
        "top", help="operator console: live terminal monitor (curses)"
    )
    top_module.add_arguments(top)
    top.set_defaults(func=_cmd_top)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
