"""Trace exporters: JSONL for tooling, Chrome ``trace_event`` for humans.

The JSONL form is the lossless interchange format (one event per line,
stable schema, read back by :func:`read_jsonl` and the ``repro.obs``
CLI).  The Chrome form is the *viewable* one: load it in Perfetto
(https://ui.perfetto.dev) or ``chrome://tracing`` and the call tree,
window traffic, compiler phases and farm jobs appear as tracks.

Mapping choices:

* CALL/RET become ``B``/``E`` duration slices (the call tree), plus a
  ``C`` counter track of call depth;
* window overflow/underflow and traps are instant events;
* pipeline-model stalls are instant events plus a cumulative per-cause
  ``C`` counter track ("pipeline stalls");
* retires are slices of their cycle cost (only present if the tracer
  recorded them — they are usually filtered at the source);
* compiler phases and farm jobs are complete (``X``) slices on their own
  process tracks, in wall time.

A ring buffer may have evicted the opening ``CALL`` of a still-open
frame, so the exporter drops returns with no matching call and closes
frames left open at the end of the buffer — Perfetto requires balanced
begin/end pairs per track.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable

from repro.obs.events import Event, EventKind

#: Chrome trace "process" ids — one per time domain / producer.
PID_MACHINE = 1
PID_TOOLCHAIN = 2
PID_FARM = 3

_PROCESS_NAMES = {
    PID_MACHINE: "simulated machine",
    PID_TOOLCHAIN: "toolchain",
    PID_FARM: "farm",
}


# -- JSONL ------------------------------------------------------------------


def write_jsonl(events: Iterable[Event], path: str | Path, dropped: int = 0) -> int:
    """Write events, one JSON object per line.  Returns the event count.

    ``events`` may be a :class:`~repro.obs.tracer.Tracer`, in which case
    its buffer and its ``dropped`` count are both taken from it.  A
    non-zero ``dropped`` (events evicted from the ring before export) is
    recorded as a leading meta line so readers can warn that the trace is
    truncated instead of silently summarizing a skewed buffer.
    """
    if hasattr(events, "events") and hasattr(events, "dropped"):  # a Tracer
        dropped = events.dropped
        events = events.events
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    count = 0
    with path.open("w", encoding="utf-8") as handle:
        if dropped:
            handle.write(json.dumps({"meta": {"schema": 1, "dropped": dropped}}) + "\n")
        for event in events:
            handle.write(json.dumps(event.to_dict(), sort_keys=True) + "\n")
            count += 1
    return count


def read_jsonl(path: str | Path) -> list[Event]:
    """Read a JSONL trace back into events (malformed lines are skipped).

    A missing file reads as an empty trace — the CLI treats the two the
    same way.
    """
    path = Path(path)
    if not path.is_file():
        return []
    try:
        return scan_jsonl(path)[0]
    except (OSError, UnicodeDecodeError):
        return []


def scan_jsonl(path: str | Path) -> tuple[list[Event], int, dict]:
    """Read a JSONL trace, reporting damage instead of hiding it.

    Returns ``(events, skipped, meta)``: ``skipped`` counts non-empty
    lines that did not parse as events (a truncated final line from an
    interrupted write, or a file that is not a JSONL trace at all);
    ``meta`` is the trace's meta header if it carries one (notably
    ``dropped`` — events the writing tracer's ring evicted), else ``{}``.
    Raises :class:`FileNotFoundError` for a missing file and
    :class:`UnicodeDecodeError` for binary content — callers that want
    the forgiving behavior use :func:`read_jsonl`.
    """
    text = Path(path).read_text(encoding="utf-8")
    events: list[Event] = []
    skipped = 0
    meta: dict = {}
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            payload = json.loads(line)
            if isinstance(payload, dict) and "meta" in payload and "kind" not in payload:
                meta.update(payload["meta"])
                continue
            events.append(Event.from_dict(payload))
        except (ValueError, KeyError, TypeError):
            skipped += 1
    return events, skipped, meta


# -- Chrome trace_event -----------------------------------------------------


def to_chrome(events: Iterable[Event]) -> dict:
    """Convert events to a Chrome ``trace_event`` JSON document."""
    trace: list[dict] = []
    call_stack: list[dict] = []
    last_ts = 0.0
    windows_spilled = 0
    windows_filled = 0
    handler_cycles = 0
    stall_cycles = {"raw": 0, "load_use": 0, "control": 0, "window": 0}

    def add(record: dict) -> None:
        trace.append(record)

    for pid, name in _PROCESS_NAMES.items():
        add(
            {
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "name": "process_name",
                "args": {"name": name},
            }
        )

    for event in events:
        ts = event.ts
        last_ts = max(last_ts, ts)
        data = event.data
        if event.kind is EventKind.CALL:
            record = {
                "ph": "B",
                "pid": PID_MACHINE,
                "tid": 1,
                "ts": ts,
                "name": f"call@{event.pc:#x}",
                "args": {"depth": data.get("depth", 0)},
            }
            call_stack.append(record)
            add(record)
            add(_depth_counter(ts, data.get("depth", 0)))
        elif event.kind is EventKind.RET:
            if not call_stack:
                # the matching CALL was evicted from the ring; skip so the
                # track stays balanced
                add(_depth_counter(ts, data.get("depth", 0)))
                continue
            call_stack.pop()
            add({"ph": "E", "pid": PID_MACHINE, "tid": 1, "ts": ts})
            add(_depth_counter(ts, data.get("depth", 0)))
        elif event.kind is EventKind.RETIRE:
            add(
                {
                    "ph": "X",
                    "pid": PID_MACHINE,
                    "tid": 2,
                    "ts": ts,
                    "dur": max(data.get("dur", 0.0), 0.001),
                    "name": data.get("op", "?"),
                    "args": {"pc": f"{event.pc:#x}"},
                }
            )
        elif event.kind in (EventKind.WINDOW_OVERFLOW, EventKind.WINDOW_UNDERFLOW, EventKind.TRAP):
            add(
                {
                    "ph": "i",
                    "pid": PID_MACHINE,
                    "tid": 1,
                    "ts": ts,
                    "s": "t",
                    "name": event.kind.value,
                    "args": dict(data),
                }
            )
            # window-pressure counter track: cumulative spill/fill traffic
            # and handler cycles, so Perfetto shows *where in the run* the
            # register file stopped absorbing the call depth
            if event.kind is EventKind.WINDOW_OVERFLOW:
                windows_spilled += data.get("windows", 1)
                handler_cycles += data.get("cost", 0)
            elif event.kind is EventKind.WINDOW_UNDERFLOW:
                windows_filled += 1
                handler_cycles += data.get("cost", 0)
            if event.kind is not EventKind.TRAP:
                add(_window_counter(ts, windows_spilled, windows_filled, handler_cycles))
        elif event.kind is EventKind.PIPE_STALL:
            add(
                {
                    "ph": "i",
                    "pid": PID_MACHINE,
                    "tid": 5,
                    "ts": ts,
                    "s": "t",
                    "name": f"stall.{data.get('cause', '?')}",
                    "args": dict(data),
                }
            )
            # cumulative per-cause stall counter track: where in the run
            # the pipeline model lost its cycles
            cause = data.get("cause", "raw")
            stall_cycles[cause] = stall_cycles.get(cause, 0) + data.get("cycles", 0)
            add(_stall_counter(ts, stall_cycles))
        elif event.kind is EventKind.MEM_REF:
            add(
                {
                    "ph": "i",
                    "pid": PID_MACHINE,
                    "tid": 3,
                    "ts": ts,
                    "s": "t",
                    "name": f"mem.{data.get('rw', '?')}",
                    "args": dict(data),
                }
            )
        elif event.kind is EventKind.PHASE:
            add(
                {
                    "ph": "X",
                    "pid": PID_TOOLCHAIN,
                    "tid": 1,
                    "ts": ts,
                    "dur": max(data.get("dur", 0.0), 0.001),
                    "name": data.get("name", "phase"),
                    "args": {k: v for k, v in data.items() if k not in ("name", "dur")},
                }
            )
        elif event.kind is EventKind.JOB_FINISH:
            add(
                {
                    "ph": "X",
                    "pid": PID_FARM,
                    "tid": 1,
                    "ts": ts,
                    "dur": max(data.get("dur", 0.0), 0.001),
                    "name": data.get("job", "job"),
                    "args": {"status": data.get("status"), "key": data.get("key", "")[:16]},
                }
            )
        elif event.kind is EventKind.JOB_START:
            add(
                {
                    "ph": "i",
                    "pid": PID_FARM,
                    "tid": 1,
                    "ts": ts,
                    "s": "p",
                    "name": data.get("job", "job"),
                    "args": {"key": data.get("key", "")[:16]},
                }
            )

    # close frames still open when the buffer ended
    while call_stack:
        call_stack.pop()
        add({"ph": "E", "pid": PID_MACHINE, "tid": 1, "ts": last_ts})

    return {"traceEvents": trace, "displayTimeUnit": "ms"}


def _window_counter(ts: float, spilled: int, filled: int, cycles: int) -> dict:
    return {
        "ph": "C",
        "pid": PID_MACHINE,
        "tid": 4,
        "ts": ts,
        "name": "window pressure",
        "args": {"spilled": spilled, "filled": filled, "handler cycles": cycles},
    }


def _stall_counter(ts: float, stalls: dict) -> dict:
    return {
        "ph": "C",
        "pid": PID_MACHINE,
        "tid": 5,
        "ts": ts,
        "name": "pipeline stalls",
        "args": dict(stalls),
    }


def _depth_counter(ts: float, depth: int) -> dict:
    return {
        "ph": "C",
        "pid": PID_MACHINE,
        "tid": 1,
        "ts": ts,
        "name": "call depth",
        "args": {"depth": depth},
    }


def write_chrome_trace(events: Iterable[Event], path: str | Path) -> int:
    """Write a Perfetto-loadable Chrome trace.  Returns the record count."""
    document = to_chrome(events)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(document), encoding="utf-8")
    return len(document["traceEvents"])
