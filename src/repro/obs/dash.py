"""``python -m repro.obs dash`` — the operator console's web dashboard.

A zero-dependency asyncio HTTP server (the same stdlib-only protocol
style as ``repro.farm serve``) that renders one self-contained HTML page
over a :class:`~repro.obs.console.ConsoleSnapshot`:

* steps/s trajectories per (workload, machine, engine), drawn as inline
  SVG line charts with the rolling-median regression detector's flags;
* cross-run regression details (run, baseline, drop);
* the farm front door's queue depth, worker liveness and dedupe hit
  rate, polled from its ``GET /status``;
* inline SVG flamegraphs from :mod:`repro.obs.profile`.

Routes: ``GET /`` (the page), ``GET /data`` (the snapshot JSON),
``GET /poll?v=N`` (long-poll; answers when the snapshot version moves
past ``N``, so the page reloads within one refresh interval of a
change), ``GET /healthz``.  Connections are keep-alive.

``--once PATH`` skips the server entirely and writes the static page —
the CI artifact mode.  The page is self-contained: inline CSS and SVG,
no external assets, dark mode via ``prefers-color-scheme``.
"""

from __future__ import annotations

import argparse
import asyncio
import html
import json
import math
import sys
import time
from pathlib import Path

from repro.obs.console import ConsoleProvider, ConsoleSnapshot
from repro.obs.profile import render_flame_svg

__all__ = ["DashServer", "main", "render_dashboard"]

_MAX_HEAD = 64 * 1024

#: Ceiling on one ``/poll`` long poll; the page re-polls on expiry.
_MAX_POLL_S = 25.0

# The dashboard's palette (validated light/dark tokens): one categorical
# blue for the single-series charts, reserved status red for regression
# flags, ink tokens for all text — marks wear color, text never does.
_CSS = """
:root {
  --surface: #fcfcfb; --ink: #0b0b0b; --ink-2: #52514e; --ink-3: #898781;
  --line: #e1e0d9; --accent: #2a78d6; --bad: #d03b3b; --bad-ink: #a32222;
  --card: #ffffff;
}
@media (prefers-color-scheme: dark) {
  :root {
    --surface: #1a1a19; --ink: #f1f0ee; --ink-2: #b0aea8; --ink-3: #898781;
    --line: #34332f; --accent: #3987e5; --bad: #e05d4d; --bad-ink: #f0867a;
    --card: #232321;
    --flame-root: #34332f;
  }
}
* { box-sizing: border-box; }
body {
  margin: 0; background: var(--surface); color: var(--ink);
  font: 14px/1.45 system-ui, -apple-system, "Segoe UI", sans-serif;
}
main { max-width: 1180px; margin: 0 auto; padding: 20px 24px 48px; }
header { display: flex; align-items: baseline; gap: 14px; flex-wrap: wrap; }
header h1 { font-size: 19px; font-weight: 650; margin: 8px 0; }
header .meta { color: var(--ink-3); font-size: 12.5px; }
h2 { font-size: 15px; font-weight: 650; margin: 28px 0 10px; }
.tiles { display: flex; gap: 12px; flex-wrap: wrap; margin-top: 14px; }
.tile {
  background: var(--card); border: 1px solid var(--line); border-radius: 8px;
  padding: 10px 14px 12px; min-width: 128px;
}
.tile .label { color: var(--ink-2); font-size: 12px; }
.tile .value { font-size: 23px; font-weight: 600; margin-top: 2px; }
.tile .value.alert { color: var(--bad-ink); }
.tile .sub { color: var(--ink-3); font-size: 11.5px; margin-top: 2px; }
.cards { display: grid; grid-template-columns: repeat(auto-fill, minmax(480px, 1fr));
         gap: 14px; }
.card {
  background: var(--card); border: 1px solid var(--line); border-radius: 8px;
  padding: 12px 14px;
}
.card h3 { font-size: 13.5px; font-weight: 650; margin: 0 0 2px;
           display: flex; gap: 8px; align-items: baseline; flex-wrap: wrap; }
.card .sub { color: var(--ink-3); font-size: 12px; margin-bottom: 6px; }
.flag {
  color: var(--bad-ink); border: 1px solid var(--bad); border-radius: 999px;
  font-size: 11px; font-weight: 600; padding: 1px 8px;
}
svg text { font: 11px system-ui, sans-serif; fill: var(--ink-3); }
svg .chart-line { stroke: var(--accent); stroke-width: 2;
                  stroke-linejoin: round; stroke-linecap: round; fill: none; }
svg .chart-dot { fill: var(--accent); stroke: var(--card); stroke-width: 2; }
svg .chart-dot.bad { fill: var(--bad); }
svg .grid { stroke: var(--line); stroke-width: 1; }
details { margin-top: 8px; }
details summary { color: var(--ink-2); font-size: 12px; cursor: pointer; }
table { border-collapse: collapse; margin-top: 6px; width: 100%; font-size: 12px; }
th, td { text-align: right; padding: 3px 8px; border-bottom: 1px solid var(--line);
         font-variant-numeric: tabular-nums; }
th:first-child, td:first-child { text-align: left; }
th { color: var(--ink-2); font-weight: 600; }
.reglist { list-style: none; margin: 8px 0 0; padding: 0; }
.reglist li { padding: 7px 10px; border-left: 3px solid var(--bad);
              background: var(--card); border-radius: 0 6px 6px 0;
              margin-bottom: 6px; }
.ok-note { color: var(--ink-2); }
.offline { color: var(--bad-ink); font-weight: 600; }
.flame { background: var(--card); border: 1px solid var(--line);
         border-radius: 8px; padding: 10px; margin-bottom: 14px;
         overflow-x: auto; }
footer { margin-top: 36px; color: var(--ink-3); font-size: 12px; }
"""


def _esc(value) -> str:
    return html.escape(str(value), quote=True)


def _fmt(value) -> str:
    """Compact human figure: 1,284 / 12.9K / 4.2M; ``—`` for missing."""
    if value is None:
        return "—"
    number = float(value)
    for unit, div in (("B", 1e9), ("M", 1e6), ("K", 1e3)):
        if abs(number) >= div * 10:
            return f"{number / div:,.1f}{unit}"
    if abs(number) < 100 and number != int(number):
        return f"{number:,.2f}"
    return f"{number:,.0f}"


def _when(timestamp) -> str:
    if not timestamp:
        return "—"
    return time.strftime("%Y-%m-%d %H:%M:%S UTC", time.gmtime(timestamp))


def _nice_ticks(low: float, high: float, count: int = 3) -> list[float]:
    """A few clean y-axis values inside [low, high]."""
    span = (high - low) or abs(high) or 1.0
    step = 10.0 ** math.floor(math.log10(span / count))
    for mult in (1, 2, 2.5, 5, 10, 20):
        if span / (step * mult) <= count:
            step *= mult
            break
    first = math.ceil(low / step) * step
    ticks = []
    tick = first
    while tick <= high + step * 1e-9:
        ticks.append(round(tick, 10))
        tick += step
    return ticks


def _trajectory_svg(
    trajectory: dict, regressed_runs: set, width: int = 520, height: int = 140
) -> str:
    """One single-series steps/s line chart (inline SVG, tooltips via
    ``<title>``).  Untimed runs keep their x slot but draw no mark, so
    gaps in a trajectory stay visible."""
    points = trajectory.get("points") or []
    timed = [(i, p) for i, p in enumerate(points) if p.get("steps_per_s") is not None]
    if not timed:
        return (
            f'<svg viewBox="0 0 {width} {height}" role="img" '
            f'aria-label="no timed runs">'
            f'<text x="{width / 2}" y="{height / 2}" text-anchor="middle">'
            f"no timed runs yet</text></svg>"
        )
    pad_l, pad_r, pad_t, pad_b = 58, 14, 10, 22
    values = [p["steps_per_s"] for _i, p in timed]
    low, high = min(values), max(values)
    if low == high:
        margin = abs(low) * 0.1 or 1.0
        low, high = low - margin, high + margin
    else:
        margin = (high - low) * 0.08
        low, high = low - margin, high + margin
    low = max(0.0, low)

    def x_at(index: int) -> float:
        if len(points) == 1:
            return (pad_l + width - pad_r) / 2
        return pad_l + index * (width - pad_l - pad_r) / (len(points) - 1)

    def y_at(value: float) -> float:
        return pad_t + (high - value) * (height - pad_t - pad_b) / (high - low)

    parts = [
        f'<svg viewBox="0 0 {width} {height}" role="img" '
        f'aria-label="steps per second per run">'
    ]
    for tick in _nice_ticks(low, high):
        y = y_at(tick)
        parts.append(
            f'<line class="grid" x1="{pad_l}" y1="{y:.1f}" '
            f'x2="{width - pad_r}" y2="{y:.1f}"/>'
            f'<text x="{pad_l - 6}" y="{y + 3.5:.1f}" '
            f'text-anchor="end">{_fmt(tick)}</text>'
        )
    if len(timed) > 1:
        coords = " ".join(
            f"{x_at(i):.1f},{y_at(p['steps_per_s']):.1f}" for i, p in timed
        )
        parts.append(f'<polyline class="chart-line" points="{coords}"/>')
    for i, point in timed:
        bad = " bad" if point.get("run_id") in regressed_runs else ""
        tip = (
            f"run {point.get('run_id')} — {_fmt(point['steps_per_s'])} steps/s"
            f" ({point.get('source') or '?'}, {_when(point.get('timestamp'))})"
        )
        parts.append(
            f'<circle class="chart-dot{bad}" cx="{x_at(i):.1f}" '
            f'cy="{y_at(point["steps_per_s"]):.1f}" r="4">'
            f"<title>{_esc(tip)}</title></circle>"
        )
    parts.append(
        f'<text x="{width - pad_r}" y="{height - 6}" text-anchor="end">'
        f"run → (oldest to newest)</text></svg>"
    )
    return "".join(parts)


def _trajectory_table(points: list) -> str:
    rows = []
    for point in points:
        rows.append(
            "<tr>"
            f"<td>{_esc(point.get('run_id') or '?')}</td>"
            f"<td>{_esc(_when(point.get('timestamp')))}</td>"
            f"<td>{_fmt(point.get('steps_per_s'))}</td>"
            f"<td>{_fmt(point.get('instructions'))}</td>"
            f"<td>{_fmt(point.get('wall_s'))}</td>"
            f"<td>{_esc(point.get('source') or '—')}</td>"
            "</tr>"
        )
    return (
        "<details><summary>runs as a table</summary><table>"
        "<tr><th>run</th><th>when</th><th>steps/s</th>"
        "<th>instructions</th><th>wall s</th><th>source</th></tr>"
        + "".join(rows)
        + "</table></details>"
    )


def _tile(label: str, value: str, sub: str = "", alert: bool = False) -> str:
    alert_class = " alert" if alert else ""
    sub_html = f'<div class="sub">{_esc(sub)}</div>' if sub else ""
    return (
        f'<div class="tile"><div class="label">{_esc(label)}</div>'
        f'<div class="value{alert_class}">{value}</div>{sub_html}</div>'
    )


def _farm_panel(farm: dict | None) -> str:
    if not farm:
        return (
            '<p class="ok-note">No farm attached — start one with '
            "<code>python -m repro.farm serve</code> and pass its URL "
            "via <code>--farm</code>.</p>"
        )
    if not farm.get("ok"):
        return (
            f'<p><span class="offline">⚠ farm unreachable</span> at '
            f"<code>{_esc(farm.get('url'))}</code> — "
            f"{_esc(farm.get('error') or 'poll failed')}</p>"
        )
    status = farm.get("status") or {}
    server = status.get("server") or {}
    client = status.get("client") or {}
    pool = client.get("pool") or {}
    alive = pool.get("alive_workers")
    workers = client.get("workers")
    respawned = pool.get("workers_respawned", 0)
    tiles = [
        _tile(
            "Workers alive",
            f"{_fmt(alive)} / {_fmt(workers)}" if alive is not None else _fmt(workers),
            sub=f"{respawned} respawned" if respawned else "",
            alert=alive is not None and workers is not None and alive < workers,
        ),
        _tile("Jobs in flight", _fmt(server.get("jobs_in_flight", client.get("in_flight")))),
        _tile("Queue depth", _fmt(pool.get("in_flight", client.get("in_flight")))),
        _tile(
            "Dedupe hit rate",
            f"{(server.get('dedupe_hit_rate') or 0.0) * 100:,.1f}%",
            sub=f"{_fmt(server.get('specs_submitted'))} submitted",
        ),
        _tile("Requests served", _fmt(server.get("requests"))),
        _tile("Uptime", f"{_fmt(server.get('uptime_s'))}s"),
    ]
    note = (
        f'<p class="sub ok-note">polled <code>{_esc(farm.get("url"))}</code> · '
        f"mode {_esc(client.get('mode') or '?')}"
        + (" · draining" if server.get("draining") else "")
        + "</p>"
    )
    return f'<div class="tiles">{"".join(tiles)}</div>{note}'


def render_dashboard(snapshot: ConsoleSnapshot | dict, *, live_version: int | None = None) -> str:
    """The whole console as one self-contained HTML page.

    Rendering is a pure function of the snapshot (plus ``live_version``,
    which embeds the long-poll reload script when set) — the dash tests
    rely on byte-identical output for identical snapshots.
    """
    if isinstance(snapshot, ConsoleSnapshot):
        snapshot = snapshot.to_dict()
    trajectories = snapshot.get("trajectories") or []
    regressions = snapshot.get("regressions") or []
    profiles = snapshot.get("profiles") or []
    regressed_runs = {r.get("run_id") for r in regressions}

    cards = []
    for trajectory in trajectories:
        flag = (
            '<span class="flag">▼ regression</span>'
            if trajectory.get("regressed")
            else ""
        )
        latest = trajectory.get("latest_steps_per_s")
        cards.append(
            '<div class="card">'
            f"<h3>{_esc(trajectory.get('label'))}{flag}</h3>"
            f'<div class="sub">{trajectory.get("runs", 0)} run(s) · latest '
            f"{_fmt(latest)}{' steps/s' if latest is not None else ''}</div>"
            + _trajectory_svg(trajectory, regressed_runs)
            + _trajectory_table(trajectory.get("points") or [])
            + "</div>"
        )
    if not cards:
        cards.append(
            '<p class="ok-note">The ledger has no records yet — record one with '
            "<code>python -m repro.obs ledger record --workload towers:10</code>.</p>"
        )

    if regressions:
        items = []
        for regression in regressions:
            label = (
                f"{regression.get('workload') or '?'}"
                f"[{regression.get('scale') or 'default'}] "
                f"{regression.get('machine') or '?'}/{regression.get('engine') or '?'}"
            )
            items.append(
                "<li><strong>⚠ "
                + _esc(label)
                + "</strong> — "
                + _esc(
                    f"{_fmt(regression.get('steps_per_s'))} steps/s vs baseline "
                    f"{_fmt(regression.get('baseline'))} "
                    f"({regression.get('drop_pct', 0):+.1f}%, "
                    f"n={regression.get('samples')}) in run {regression.get('run_id')}"
                )
                + "</li>"
            )
        regression_html = f'<ul class="reglist">{"".join(items)}</ul>'
    else:
        threshold = snapshot.get("threshold_pct", 20.0)
        regression_html = (
            f'<p class="ok-note">✓ no trajectory is more than {threshold:g}% '
            "below its rolling-median baseline.</p>"
        )

    flames = []
    for profile in profiles:
        stacks = profile.get("stacks") or {}
        label = profile.get("workload") or profile.get("source_file") or "profile"
        title = f"{profile.get('machine') or '?'} · {label}"
        flames.append(
            f'<div class="flame">{render_flame_svg(stacks, title=title)}</div>'
        )
    flame_html = "".join(flames) or (
        '<p class="ok-note">No profiles requested (<code>--no-profile</code>).</p>'
    )

    farm = snapshot.get("farm")
    total_runs = sum(t.get("runs", 0) for t in trajectories)
    overview = [
        _tile("Trajectories", _fmt(len(trajectories))),
        _tile("Recorded runs", _fmt(total_runs)),
        _tile(
            "Regressions",
            _fmt(len(regressions)),
            sub=f"threshold {snapshot.get('threshold_pct', 20.0):g}%",
            alert=bool(regressions),
        ),
        _tile(
            "Farm",
            "live" if farm and farm.get("ok") else ("offline" if farm else "—"),
            alert=bool(farm) and not farm.get("ok"),
        ),
    ]

    poll_script = ""
    mode_note = "static snapshot"
    if live_version is not None:
        mode_note = "live · auto-refresh"
        poll_script = (
            "<script>(async () => {\n"
            f"  const since = {int(live_version)};\n"
            "  for (;;) {\n"
            "    try {\n"
            "      const r = await fetch('/poll?v=' + since, {cache: 'no-store'});\n"
            "      if (r.ok) {\n"
            "        const d = await r.json();\n"
            "        if (d.version !== since) { location.reload(); return; }\n"
            "      } else { await new Promise(s => setTimeout(s, 2000)); }\n"
            "    } catch (e) { await new Promise(s => setTimeout(s, 2000)); }\n"
            "  }\n"
            "})();</script>"
        )

    return (
        "<!doctype html>\n<html lang=\"en\"><head><meta charset=\"utf-8\">"
        '<meta name="viewport" content="width=device-width, initial-scale=1">'
        "<title>repro operator console</title>"
        f"<style>{_CSS}</style></head><body><main>"
        "<header><h1>repro operator console</h1>"
        f'<span class="meta">ledger <code>{_esc(snapshot.get("ledger_root"))}</code>'
        f" · generated {_esc(_when(snapshot.get('generated_at')))}"
        f" · {_esc(mode_note)}</span></header>"
        f'<div class="tiles" id="overview">{"".join(overview)}</div>'
        f"<h2>Throughput trajectories</h2>"
        f'<section id="trajectories" class="cards" '
        f'data-trajectories="{len(trajectories)}">{"".join(cards)}</section>'
        f"<h2>Regressions</h2>"
        f'<section id="regressions" data-regressions="{len(regressions)}">'
        f"{regression_html}</section>"
        f"<h2>Farm</h2>"
        f'<section id="farm">{_farm_panel(farm)}</section>'
        f"<h2>Flamegraphs</h2>"
        f'<section id="flamegraphs" data-flamegraphs="{len(profiles)}">'
        f"{flame_html}</section>"
        "<footer>self-contained page · stdlib only · "
        "<code>GET /data</code> for the snapshot JSON</footer>"
        f"</main>{poll_script}</body></html>\n"
    )


class DashServer:
    """The live dashboard server: keep-alive HTTP over one provider.

    A background refresher rebuilds the snapshot every ``interval``
    seconds (off-loop — the provider does file and socket I/O) and bumps
    the page version only when the comparable body actually changed, so
    long-pollers aren't woken by wall-clock stamps.
    """

    def __init__(
        self,
        provider: ConsoleProvider,
        host: str = "127.0.0.1",
        port: int = 8422,
        interval: float = 2.0,
        idle_timeout: float = 75.0,
    ):
        self.provider = provider
        self.host = host
        self.port = port
        self.interval = interval
        self.idle_timeout = idle_timeout
        self._snapshot: ConsoleSnapshot | None = None
        self._comparable: dict | None = None
        self._version = 1
        self._changed = asyncio.Event()
        self._server: asyncio.base_events.Server | None = None
        self._refresher: asyncio.Task | None = None
        self._shutdown = asyncio.Event()

    # -- snapshot state ----------------------------------------------------------

    def _install(self, snapshot: ConsoleSnapshot) -> None:
        comparable = snapshot.comparable()
        if comparable != self._comparable:
            self._snapshot = snapshot
            self._comparable = comparable
            self._version += 1
            changed, self._changed = self._changed, asyncio.Event()
            changed.set()
        else:
            self._snapshot = snapshot  # fresher stamps, same body

    async def refresh(self) -> None:
        snapshot = await asyncio.get_running_loop().run_in_executor(
            None, self.provider.snapshot
        )
        self._install(snapshot)

    async def _refresh_loop(self) -> None:
        while not self._shutdown.is_set():
            try:
                await asyncio.wait_for(self._shutdown.wait(), self.interval)
            except asyncio.TimeoutError:
                pass
            if self._shutdown.is_set():
                break
            try:
                await self.refresh()
            except Exception as exc:  # a flaky poll must not kill the console
                print(f"dash: refresh failed: {exc}", file=sys.stderr)

    async def _wait_version(self, since: int, timeout: float) -> int:
        loop = asyncio.get_running_loop()
        deadline = loop.time() + timeout
        while self._version == since:
            remaining = deadline - loop.time()
            if remaining <= 0:
                break
            event = self._changed
            try:
                await asyncio.wait_for(event.wait(), min(remaining, 1.0))
            except asyncio.TimeoutError:
                pass
        return self._version

    # -- protocol ----------------------------------------------------------------

    @staticmethod
    def _response(
        code: int, body: bytes, content_type: str, keep_alive: bool
    ) -> bytes:
        reasons = {200: "OK", 400: "Bad Request", 404: "Not Found",
                   405: "Method Not Allowed", 500: "Internal Server Error"}
        connection = "keep-alive" if keep_alive else "close"
        return (
            f"HTTP/1.1 {code} {reasons.get(code, 'OK')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Cache-Control: no-store\r\n"
            f"Connection: {connection}\r\n\r\n".encode("ascii") + body
        )

    async def _route(self, path: str, query: dict) -> tuple[int, bytes, str]:
        if path in ("/", "/index.html"):
            page = render_dashboard(self._snapshot, live_version=self._version)
            return 200, page.encode("utf-8"), "text/html; charset=utf-8"
        if path == "/data":
            body = json.dumps(self._snapshot.to_dict(), sort_keys=True)
            return 200, body.encode("utf-8"), "application/json"
        if path == "/poll":
            try:
                since = int(query.get("v", "0") or "0")
            except ValueError:
                return 400, b'{"error": "v must be an integer"}', "application/json"
            timeout = min(float(query.get("wait", _MAX_POLL_S) or _MAX_POLL_S), _MAX_POLL_S)
            version = await self._wait_version(since, timeout)
            body = json.dumps({"version": version, "changed": version != since})
            return 200, body.encode("utf-8"), "application/json"
        if path == "/healthz":
            body = json.dumps({"ok": True, "version": self._version})
            return 200, body.encode("utf-8"), "application/json"
        return 404, json.dumps(
            {"error": f"no route for {path}"}
        ).encode("utf-8"), "application/json"

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    head = await asyncio.wait_for(
                        reader.readuntil(b"\r\n\r\n"), self.idle_timeout
                    )
                except (
                    asyncio.IncompleteReadError,
                    asyncio.LimitOverrunError,
                    asyncio.TimeoutError,
                    OSError,
                ):
                    break
                request_line, *header_lines = head.decode("latin-1").split("\r\n")
                try:
                    method, target, version = request_line.split(" ", 2)
                except ValueError:
                    break
                headers = {}
                for line in header_lines:
                    if ":" in line:
                        name, _, value = line.partition(":")
                        headers[name.strip().lower()] = value.strip()
                length = int(headers.get("content-length", 0) or 0)
                if length:
                    await reader.readexactly(length)  # no POST routes; drain it
                connection = headers.get("connection", "").lower()
                keep_alive = (
                    connection != "close"
                    if version.strip() == "HTTP/1.1"
                    else connection == "keep-alive"
                )
                path, _, query_string = target.partition("?")
                query = {}
                for pair in query_string.split("&"):
                    if pair:
                        name, _, value = pair.partition("=")
                        query[name] = value
                if method != "GET":
                    writer.write(self._response(
                        405, b'{"error": "GET only"}', "application/json", False
                    ))
                    await writer.drain()
                    break
                try:
                    code, body, content_type = await self._route(path, query)
                except Exception as exc:  # a handler bug answers 500, not hangs
                    code, content_type = 500, "application/json"
                    body = json.dumps(
                        {"error": f"{type(exc).__name__}: {exc}"}
                    ).encode("utf-8")
                writer.write(self._response(code, body, content_type, keep_alive))
                await writer.drain()
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    # -- lifecycle ---------------------------------------------------------------

    async def start(self) -> tuple[str, int]:
        await self.refresh()  # GET / must have a snapshot from request one
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port, limit=_MAX_HEAD
        )
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]
        self._refresher = asyncio.get_running_loop().create_task(self._refresh_loop())
        return self.host, self.port

    def request_shutdown(self) -> None:
        self._shutdown.set()
        changed, self._changed = self._changed, asyncio.Event()
        changed.set()  # release long-pollers promptly

    async def serve_until_shutdown(self) -> None:
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.start_serving()
            await self._shutdown.wait()
            self._server.close()
            if self._refresher is not None:
                await self._refresher


async def run_server(provider: ConsoleProvider, args, ready=None) -> int:
    import signal

    server = DashServer(
        provider,
        host=args.host,
        port=args.port,
        interval=args.interval,
    )
    await server.start()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, server.request_shutdown)
        except (NotImplementedError, RuntimeError):
            pass  # non-main thread or platform without signal support
    print(
        json.dumps(
            {"dash": {"host": server.host, "port": server.port,
                      "interval": server.interval}},
            sort_keys=True,
        ),
        flush=True,
    )
    if ready is not None:
        ready(server)
    await server.serve_until_shutdown()
    return 0


def resolve_ledger(explicit: str | None):
    """The ledger root the console should read.

    An explicit ``--ledger`` wins.  Otherwise the default root — unless
    it has no records and the checked-in ``benchmarks/ledger_seed/``
    does, in which case the seed is used, so the dashboard renders real
    panels on a fresh checkout.
    """
    if explicit:
        return explicit
    from repro.obs.ledger import Ledger

    default = Ledger()
    if not default.records_path.is_file():
        seed = Path("benchmarks/ledger_seed")
        if (seed / "records.jsonl").is_file():
            return seed
    return default


def build_provider(args) -> ConsoleProvider:
    specs = [] if args.no_profile else (args.profile or ["towers:10"])
    return ConsoleProvider(
        ledger=resolve_ledger(args.ledger),
        farm_url=args.farm,
        profile_specs=specs,
        threshold_pct=args.threshold,
    )


def add_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--once",
        metavar="PATH",
        help="render one static HTML page to PATH (or - for stdout) and exit",
    )
    parser.add_argument(
        "--ledger",
        metavar="DIR",
        help="ledger root (default: $REPRO_LEDGER / .repro-ledger, falling "
        "back to benchmarks/ledger_seed when empty)",
    )
    parser.add_argument(
        "--farm",
        metavar="URL",
        help="a repro.farm serve base URL to poll for the farm panel",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8422)
    parser.add_argument(
        "--interval",
        type=float,
        default=2.0,
        help="seconds between snapshot refreshes in live mode (default 2)",
    )
    parser.add_argument(
        "--profile",
        action="append",
        metavar="NAME[:ARG]",
        help="workload spec to flamegraph (repeatable; default towers:10)",
    )
    parser.add_argument(
        "--no-profile", action="store_true", help="skip the flamegraph panel"
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=20.0,
        metavar="PCT",
        help="regression threshold in percent (default 20)",
    )


def main(args) -> int:
    """``python -m repro.obs dash`` (argparse namespace)."""
    try:
        provider = build_provider(args)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.once:
        page = render_dashboard(provider.snapshot())
        if args.once == "-":
            sys.stdout.write(page)
        else:
            path = Path(args.once)
            if path.parent != Path(""):
                path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(page, encoding="utf-8")
            print(f"wrote dashboard to {path}", file=sys.stderr)
        return 0
    return asyncio.run(run_server(provider, args))


if __name__ == "__main__":  # pragma: no cover - exercised via the CLI
    parser = argparse.ArgumentParser(description="operator console web dashboard")
    add_arguments(parser)
    raise SystemExit(main(parser.parse_args()))
