"""Source-level profiler: hotspots, call graphs and flamegraphs.

Folds the tracer's machine events (:data:`~repro.obs.events.PROFILE_KINDS`)
into a :class:`Profile`:

* **flat histograms** — cycles per PC, per C source line and per function
  (self cost), symbolized through :class:`~repro.obs.symbols.Symbolizer`;
* **call stacks** — CALL/RET events replayed into a stack of function
  names, every retired instruction's cycle cost charged to the stack it
  executed under (``stack_cycles``), window overflow/underflow handler
  cycles charged to synthetic ``<window_overflow>`` / ``<window_underflow>``
  leaf frames so the flamegraph conserves the machine's total cycles;
* **a weighted call graph** — (caller, callee) edge counts plus the
  cumulative cycles computed from the stacks.

The builder is *streaming*: :class:`ProfilingTracer` routes each event
straight into :class:`ProfileBuilder` without allocating
:class:`~repro.obs.events.Event` objects or buffering, so profiling a
multi-hundred-million-cycle run costs O(1) memory.  The same builder also
folds stored traces (:meth:`ProfileBuilder.feed`), where it must survive
ring-buffer truncation: returns with no matching call count as
``truncated_rets`` and the stack is reseeded from the next retire's
function.

Exports: collapsed-stack text for flamegraph tooling
(:meth:`Profile.collapsed`), a flat-profile table (:meth:`Profile.report`),
C source annotated with per-line cycle percentages
(:meth:`Profile.annotate`) and a call-graph listing
(:meth:`Profile.callgraph_text`).
"""

from __future__ import annotations

import dataclasses
import html
from collections import Counter

from repro.obs.events import PROFILE_KINDS, EventKind
from repro.obs.symbols import UNKNOWN, Symbolizer
from repro.obs.tracer import Tracer

#: Stacks deeper than this are folded into one ``<deep>`` frame so a
#: runaway recursion cannot make ``stack_cycles`` keys arbitrarily long.
MAX_STACK_FRAMES = 128

#: Synthetic frame names (angle brackets cannot appear in C identifiers).
OVERFLOW_FRAME = "<window_overflow>"
UNDERFLOW_FRAME = "<window_underflow>"
ANON_FRAME = "<anon>"
DEEP_FRAME = "<deep>"


class ProfileBuilder:
    """Streaming fold of machine events into profile histograms.

    Feed it events (via :class:`ProfilingTracer` during a live run, or
    :meth:`feed` from a stored trace) and call :meth:`finish`.
    """

    def __init__(self, symbolizer: Symbolizer):
        self.symbolizer = symbolizer
        self.stack: list[str] = []
        self.pc_cycles: Counter = Counter()
        self.func_self: Counter = Counter()
        self.line_cycles: Counter = Counter()
        self.stack_cycles: Counter = Counter()
        self.edges: Counter = Counter()
        self.retired_cycles = 0
        self.attributed_cycles = 0
        self.window_cycles: Counter = Counter()
        self.calls = 0
        self.rets = 0
        self.traps = 0
        #: returns whose CALL was lost to ring-buffer eviction
        self.truncated_rets = 0
        #: times the stack had to be reseeded from a retire's own function
        self.reseeded = 0
        # a CALL with no target address pushes an anonymous frame that is
        # renamed at the first retire clearly inside the callee
        self._pending = False
        self._pending_caller = ""

    # -- event handlers -----------------------------------------------------

    def on_retire(self, pc: int, cost: int) -> None:
        func, line = self.symbolizer.location_at(pc)
        self.retired_cycles += cost
        self.pc_cycles[pc] += cost
        self.func_self[func] += cost
        if func != UNKNOWN:
            self.attributed_cycles += cost
        if line:
            self.line_cycles[line] += cost
        if self._pending and self.stack:
            # the anonymous callee resolves at the first retire that is
            # not still in the caller (RISC call delay slots retire one
            # caller instruction *after* the window change)
            if func != UNKNOWN and func != self._pending_caller:
                self.stack[-1] = func
                self.edges[(self._pending_caller, func)] += 1
                self._pending = False
        if not self.stack:
            self.stack.append(func)
            self.reseeded += 1
        key = self._key()
        if self._pending and len(key) > 1 and func == self._pending_caller:
            # still in the caller (delay slot): charge the caller's stack,
            # not the unresolved anonymous frame
            key = key[:-1]
        self.stack_cycles[key] += cost

    def on_call(self, pc: int, target: int, depth: int) -> None:
        self.calls += 1
        if not self.stack:
            self.stack.append(self.symbolizer.function_at(pc))
            self.reseeded += 1
        caller = self.stack[-1]
        if target:
            callee = self.symbolizer.name_for_target(target)
            self.edges[(caller, callee)] += 1
        else:
            callee = ANON_FRAME
            self._pending = True
            self._pending_caller = caller
        self.stack.append(callee)

    def on_ret(self, pc: int, depth: int) -> None:
        self.rets += 1
        if self._pending:
            # the anonymous frame returns before any retire resolved it
            self.edges[(self._pending_caller, ANON_FRAME)] += 1
            self._pending = False
        if self.stack:
            self.stack.pop()
        else:
            self.truncated_rets += 1

    def on_window(self, kind: str, cost: int) -> None:
        frame = OVERFLOW_FRAME if kind == "overflow" else UNDERFLOW_FRAME
        self.window_cycles[kind] += cost
        self.func_self[frame] += cost
        self.stack_cycles[self._key() + (frame,)] += cost

    def on_trap(self, pc: int, kind: str) -> None:
        self.traps += 1

    def _key(self) -> tuple[str, ...]:
        if len(self.stack) > MAX_STACK_FRAMES:
            return tuple(self.stack[: MAX_STACK_FRAMES - 1]) + (DEEP_FRAME,)
        return tuple(self.stack)

    # -- stored-trace input -------------------------------------------------

    def feed(self, events) -> None:
        """Fold a stored event sequence (tolerates truncated prefixes)."""
        for event in events:
            data = event.data
            if event.kind is EventKind.RETIRE:
                self.on_retire(event.pc, data.get("cycles", 1))
            elif event.kind is EventKind.CALL:
                self.on_call(event.pc, data.get("target", 0), data.get("depth", 0))
            elif event.kind is EventKind.RET:
                self.on_ret(event.pc, data.get("depth", 0))
            elif event.kind is EventKind.WINDOW_OVERFLOW:
                self.on_window("overflow", data.get("cost", 0))
            elif event.kind is EventKind.WINDOW_UNDERFLOW:
                self.on_window("underflow", data.get("cost", 0))
            elif event.kind is EventKind.TRAP:
                self.on_trap(event.pc, data.get("trap", ""))

    # -- output -------------------------------------------------------------

    def finish(
        self,
        machine: str = "",
        workload: str = "",
        total_cycles: int = 0,
        source_file: str = "",
        source: str = "",
        truncated: int = 0,
    ) -> "Profile":
        func_cum: Counter = Counter()
        for key, cycles in self.stack_cycles.items():
            for func in set(key):
                func_cum[func] += cycles
        return Profile(
            machine=machine,
            workload=workload,
            source_file=source_file,
            source=source,
            total_cycles=total_cycles,
            truncated=truncated,
            retired_cycles=self.retired_cycles,
            attributed_cycles=self.attributed_cycles,
            window_cycles=dict(self.window_cycles),
            pc_cycles=dict(self.pc_cycles),
            func_self=dict(self.func_self),
            func_cum=dict(func_cum),
            line_cycles=dict(self.line_cycles),
            stack_cycles=dict(self.stack_cycles),
            edges=dict(self.edges),
            counters={
                "calls": self.calls,
                "rets": self.rets,
                "traps": self.traps,
                "truncated_rets": self.truncated_rets,
                "reseeded": self.reseeded,
            },
        )


@dataclasses.dataclass
class Profile:
    """A finished profile: histograms, stacks, call graph, and reports."""

    machine: str
    workload: str
    source_file: str
    #: the mini-C source text (empty when profiling bare assembly)
    source: str
    #: the run's reported total cycles (``RunResult.cycles``)
    total_cycles: int
    retired_cycles: int
    attributed_cycles: int
    window_cycles: dict
    pc_cycles: dict
    func_self: dict
    func_cum: dict
    line_cycles: dict
    stack_cycles: dict
    edges: dict
    counters: dict
    #: events the source tracer's ring dropped before this profile was
    #: built (0 for streaming live profiles, which never buffer)
    truncated: int = 0

    @property
    def sampled_cycles(self) -> int:
        """Total cycles charged to stacks — the flamegraph's root total."""
        return sum(self.stack_cycles.values())

    @property
    def attributed_fraction(self) -> float:
        """Fraction of retired cycles resolved to a named function."""
        return self.attributed_cycles / self.retired_cycles if self.retired_cycles else 0.0

    # -- exports ------------------------------------------------------------

    def collapsed(self) -> str:
        """Collapsed-stack text: ``root;child;leaf cycles`` per line.

        The format flamegraph.pl / speedscope / inferno consume; lines are
        sorted so equal profiles serialize identically.
        """
        lines = [
            ";".join(key) + f" {cycles}"
            for key, cycles in sorted(self.stack_cycles.items())
        ]
        return "\n".join(lines) + ("\n" if lines else "")

    def report(self, top: int = 20) -> str:
        """Flat profile: per-function self/cumulative cycles, gprof-style."""
        denominator = self.sampled_cycles or 1
        calls_into: Counter = Counter()
        for (_caller, callee), count in self.edges.items():
            calls_into[callee] += count
        header = (
            f"{self.machine} profile"
            + (f" of {self.workload}" if self.workload else "")
            + f": {self.total_cycles} cycles, "
            f"{self.attributed_fraction:.1%} attributed"
            + (
                f"\nTRUNCATED: {self.truncated} event(s) dropped — "
                "figures understate the run"
                if self.truncated
                else ""
            )
            + "\n"
        )
        lines = [
            header,
            f"{'function':<24} {'self':>12} {'self%':>7} {'cum':>12} {'cum%':>7} {'calls':>8}",
        ]
        ranked = sorted(self.func_self.items(), key=lambda kv: (-kv[1], kv[0]))
        for func, self_cycles in ranked[:top]:
            cum = self.func_cum.get(func, self_cycles)
            lines.append(
                f"{func:<24} {self_cycles:>12} {self_cycles / denominator:>6.1%} "
                f"{cum:>12} {cum / denominator:>6.1%} {calls_into.get(func, 0):>8}"
            )
        if len(ranked) > top:
            lines.append(f"... ({len(ranked) - top} more functions)")
        return "\n".join(lines) + "\n"

    def annotate(self, threshold: float = 0.0005) -> str:
        """The C source with per-line cycle counts and percentages.

        Lines carrying less than ``threshold`` of the retired cycles show
        blanks instead of noise.  Cycles with no line (hand-written
        runtime assembly, window handlers) are summarized at the end.
        """
        if not self.source:
            return "no source text recorded for this program\n"
        denominator = self.retired_cycles or 1
        out = [
            f"{self.source_file or '<source>'} — {self.machine}"
            + (f" {self.workload}" if self.workload else "")
            + f", {self.total_cycles} cycles\n",
            f"{'cycles':>12} {'%':>6}  line  source",
        ]
        for number, text in enumerate(self.source.splitlines(), start=1):
            cycles = self.line_cycles.get(number, 0)
            if cycles and cycles / denominator >= threshold:
                prefix = f"{cycles:>12} {cycles / denominator:>6.1%}"
            elif cycles:
                prefix = f"{cycles:>12} {'':>6}"
            else:
                prefix = f"{'':>12} {'':>6}"
            out.append(f"{prefix}  {number:>4}  {text}")
        unattributed = self.retired_cycles - sum(self.line_cycles.values())
        if unattributed:
            out.append(
                f"\n{unattributed:>12} {unattributed / denominator:>6.1%}  "
                "(no C line: runtime/startup assembly)"
            )
        window = sum(self.window_cycles.values())
        if window:
            out.append(f"{window:>12} {'':>6}  (register-window overflow/underflow handlers)")
        return "\n".join(out) + "\n"

    def callgraph_text(self, top: int = 30) -> str:
        """Call-graph edges ranked by call count, with callee cycle weight."""
        denominator = self.sampled_cycles or 1
        lines = [f"{'calls':>10}  {'callee cum%':>11}  edge"]
        ranked = sorted(self.edges.items(), key=lambda kv: (-kv[1], kv[0]))
        for (caller, callee), count in ranked[:top]:
            cum = self.func_cum.get(callee, 0)
            lines.append(f"{count:>10}  {cum / denominator:>10.1%}  {caller} -> {callee}")
        if len(ranked) > top:
            lines.append(f"... ({len(ranked) - top} more edges)")
        return "\n".join(lines) + "\n"

    def flame_svg(self, width: int = 1100, row_height: int = 18) -> str:
        """The flamegraph as one self-contained inline SVG string."""
        label = self.workload or self.source_file or "profile"
        title = f"{self.machine} {label}" if self.machine else label
        return render_flame_svg(
            self.stack_cycles, title=title, width=width, row_height=row_height
        )

    def to_dict(self) -> dict:
        """JSON-friendly form (stack/edge keys joined with ``;``)."""
        return {
            "machine": self.machine,
            "workload": self.workload,
            "source_file": self.source_file,
            "total_cycles": self.total_cycles,
            "retired_cycles": self.retired_cycles,
            "attributed_cycles": self.attributed_cycles,
            "attributed_fraction": round(self.attributed_fraction, 6),
            "window_cycles": dict(self.window_cycles),
            "func_self": dict(sorted(self.func_self.items())),
            "func_cum": dict(sorted(self.func_cum.items())),
            "line_cycles": {str(k): v for k, v in sorted(self.line_cycles.items())},
            "stacks": {";".join(k): v for k, v in sorted(self.stack_cycles.items())},
            "edges": {f"{a};{b}": n for (a, b), n in sorted(self.edges.items())},
            "counters": dict(self.counters),
            "truncated": self.truncated,
        }


class ProfilingTracer(Tracer):
    """A tracer that folds events into a :class:`ProfileBuilder` directly.

    No :class:`Event` objects are built and nothing is buffered — the
    machines' emit helpers call straight into the builder, so profiling
    costs a method call per event instead of an allocation per event.
    """

    def __init__(self, builder: ProfileBuilder, cycle_ns: float = 400.0):
        super().__init__(capacity=1, kinds=PROFILE_KINDS, cycle_ns=cycle_ns)
        self.builder = builder

    def retire(self, cycles: int, pc: int, op: str, cost: int) -> None:
        self.builder.on_retire(pc, cost)

    def call(self, cycles: int, pc: int, depth: int, target: int = 0) -> None:
        self.builder.on_call(pc, target, depth)

    def ret(self, cycles: int, pc: int, depth: int) -> None:
        self.builder.on_ret(pc, depth)

    def window_overflow(self, cycles: int, windows: int, depth: int, cost: int = 0) -> None:
        self.builder.on_window("overflow", cost)

    def window_underflow(self, cycles: int, depth: int, cost: int = 0) -> None:
        self.builder.on_window("underflow", cost)

    def trap(self, cycles: int, pc: int, kind: str, detail: str) -> None:
        self.builder.on_trap(pc, kind)


def profile_run(compiled, *, max_steps: int | None = None, workload: str = ""):
    """Run a :class:`~repro.cc.driver.CompiledProgram` under the profiler.

    Returns ``(profile, run_result)``.  Works for either target; the
    driver import is deferred to keep ``repro.obs`` import-light.
    """
    from repro.cc.driver import run_compiled

    symbolizer = Symbolizer(compiled.program)
    builder = ProfileBuilder(symbolizer)
    cycle_ns = 400.0 if compiled.target == "risc1" else 200.0
    tracer = ProfilingTracer(builder, cycle_ns=cycle_ns)
    result = run_compiled(compiled, max_steps=max_steps, tracer=tracer)
    profile = builder.finish(
        machine=result.machine,
        workload=workload,
        total_cycles=result.cycles,
        source_file=compiled.program.source_file,
        source=compiled.source,
    )
    return profile, result


def profile_events(
    events, program, machine: str = "", workload: str = "", dropped: int = 0
) -> Profile:
    """Build a profile from a stored event list against its program image.

    ``dropped`` is the source trace's ring-eviction count (the ``meta``
    of :func:`~repro.obs.exporters.scan_jsonl`); it flows into
    :attr:`Profile.truncated` so reports disclose the skew.
    """
    builder = ProfileBuilder(Symbolizer(program))
    builder.feed(events)
    return builder.finish(
        machine=machine,
        workload=workload,
        source_file=program.source_file,
        truncated=dropped,
    )


# -- inline SVG flamegraphs ---------------------------------------------------

#: Frame fills by depth: the sequential blue ramp's ordinal band (every
#: step clears 2:1 on both chart surfaces), cycled.  Each fill is emitted
#: as ``var(--flame-dN, #hex)`` so an embedding page (the dashboard) can
#: restep the ramp for dark mode; the hex fallback keeps a bare SVG
#: self-contained.
_FLAME_FILLS = (
    "#86b6ef", "#6da7ec", "#5598e7", "#3987e5",
    "#2a78d6", "#256abf", "#1c5cab", "#184f95",
)
#: In-fill label ink per depth, picked by the fill's luminance (light
#: steps take near-black ink, dark steps take white).
_FLAME_INKS = (
    "#0b0b0b", "#0b0b0b", "#0b0b0b", "#ffffff",
    "#ffffff", "#ffffff", "#ffffff", "#ffffff",
)
#: Approximate glyph advance at font-size 11 for label truncation.
_FLAME_CHAR_PX = 6.3


def render_flame_svg(
    stack_cycles: dict,
    *,
    title: str = "",
    width: int = 1100,
    row_height: int = 18,
    min_px: float = 1.0,
) -> str:
    """Render collapsed stacks as a deterministic, self-contained SVG.

    ``stack_cycles`` maps stack tuples (root-first frame names) to cycle
    counts — exactly :attr:`Profile.stack_cycles`, or a dict rebuilt from
    the ``"a;b;c"`` keys of :meth:`Profile.to_dict`.  The layout is an
    icicle (root on top); every frame carries a ``<title>`` hover with
    its exact cycles and share, so the SVG needs no script.  Children are
    laid out in sorted order, making equal profiles serialize
    byte-identically (the CI determinism gate).
    """
    stacks = {
        tuple(key.split(";")) if isinstance(key, str) else tuple(key): cycles
        for key, cycles in stack_cycles.items()
        if key and cycles > 0
    }
    total = sum(stacks.values())
    root_label = html.escape(title or "all", quote=True)
    if not total:
        return (
            f'<svg xmlns="http://www.w3.org/2000/svg" viewBox="0 0 {width} {row_height}" '
            f'width="{width}" height="{row_height}" role="img" aria-label="empty flamegraph">'
            f'<text x="4" y="{row_height - 5}" font-size="11" fill="#898781" '
            f'font-family="system-ui, sans-serif">no stack samples recorded</text></svg>'
        )

    # fold the stacks into a tree: name -> [cycles, children]
    tree: dict = {}
    for frames, cycles in sorted(stacks.items()):
        node = tree
        for frame in frames:
            entry = node.setdefault(frame, [0, {}])
            entry[0] += cycles
            node = entry[1]

    px_per_cycle = width / total
    body: list[str] = []
    max_depth = 0

    def emit(children: dict, x: float, depth: int) -> None:
        nonlocal max_depth
        for name, (cycles, grandchildren) in sorted(children.items()):
            w = cycles * px_per_cycle
            if w < min_px:
                x += w
                continue
            max_depth = max(max_depth, depth)
            y = depth * row_height
            fill = _FLAME_FILLS[(depth - 1) % len(_FLAME_FILLS)]
            ink = _FLAME_INKS[(depth - 1) % len(_FLAME_INKS)]
            safe = html.escape(name, quote=True)
            body.append(
                f'<g><title>{safe} — {cycles:,} cycles '
                f'({cycles / total:.1%} of {total:,})</title>'
                f'<rect x="{x:.2f}" y="{y}" width="{max(w - 0.8, 0.4):.2f}" '
                f'height="{row_height - 2}" rx="2" '
                f'fill="var(--flame-d{(depth - 1) % len(_FLAME_FILLS)}, {fill})"/>'
            )
            chars = int((w - 8) / _FLAME_CHAR_PX)
            if chars >= 2:
                shown = name if len(name) <= chars else name[: max(chars - 1, 1)] + "…"
                body.append(
                    f'<text x="{x + 4:.2f}" y="{y + row_height - 6}" font-size="11" '
                    f'fill="{ink}">{html.escape(shown, quote=True)}</text>'
                )
            body.append("</g>")
            emit(grandchildren, x, depth + 1)
            x += w

    emit(tree, 0.0, 1)
    height = (max_depth + 1) * row_height
    header = (
        f'<g><title>{root_label} — {total:,} cycles (100.0%)</title>'
        f'<rect x="0" y="0" width="{width}" height="{row_height - 2}" rx="2" '
        f'fill="var(--flame-root, #e1e0d9)"/>'
        f'<text x="4" y="{row_height - 6}" font-size="11" '
        f'fill="var(--flame-root-ink, #0b0b0b)">{root_label} — {total:,} cycles</text></g>'
    )
    return (
        f'<svg xmlns="http://www.w3.org/2000/svg" viewBox="0 0 {width} {height}" '
        f'width="{width}" height="{height}" role="img" '
        f'aria-label="flamegraph: {root_label}" '
        f'font-family="system-ui, -apple-system, \'Segoe UI\', sans-serif">'
        + header
        + "".join(body)
        + "</svg>"
    )
