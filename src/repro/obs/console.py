"""The operator console's shared data-provider layer.

``python -m repro.obs dash`` (the web dashboard) and ``python -m
repro.obs top`` (the curses monitor) are two faces of one view of the
system.  This module is that view: a :class:`ConsoleProvider` folds the
run ledger (through :class:`~repro.obs.ledger.LedgerView`), a farm
server's ``GET /status`` document, and optional workload profiles into
one schema-versioned :class:`ConsoleSnapshot` — so whatever the dash
renders as an SVG panel and the TUI renders as a sparkline row comes
from the same numbers, computed once.

Everything here is stdlib-only (``urllib`` for the farm poll); the heavy
imports (compiler, simulators) are deferred into the optional profile
computation, so tailing a ledger costs nothing extra.
"""

from __future__ import annotations

import dataclasses
import json
import time
import urllib.error
import urllib.request

from repro.obs.ledger import LedgerView, group_label

__all__ = [
    "CONSOLE_SCHEMA_VERSION",
    "ConsoleProvider",
    "ConsoleSnapshot",
    "fetch_farm_status",
    "sparkline",
]

#: Bump on any backwards-incompatible snapshot change.
CONSOLE_SCHEMA_VERSION = 1

#: Eight-step block ramp for in-terminal sparklines.
SPARK_CHARS = "▁▂▃▄▅▆▇█"


def sparkline(values, width: int = 24) -> str:
    """A unicode sparkline of the last ``width`` values.

    ``None`` entries (untimed runs) render as ``·`` so gaps in a
    trajectory stay visible instead of silently compressing the series.
    Returns an empty string when nothing is numeric.
    """
    tail = list(values)[-max(1, width):]
    numeric = [v for v in tail if v is not None]
    if not numeric:
        return ""
    low, high = min(numeric), max(numeric)
    span = (high - low) or 1.0
    out = []
    for value in tail:
        if value is None:
            out.append("·")
        else:
            step = int((value - low) / span * (len(SPARK_CHARS) - 1))
            out.append(SPARK_CHARS[step])
    return "".join(out)


def fetch_farm_status(url: str, timeout: float = 5.0) -> dict:
    """``GET {url}/status`` from a ``repro.farm serve`` front door.

    ``url`` is the server base (``http://127.0.0.1:8421``); a bare
    ``host:port`` is promoted to ``http://``.  Raises :class:`OSError`
    (connection problems) or :class:`ValueError` (non-JSON payload) —
    :class:`ConsoleProvider` folds either into an ``ok: False`` farm
    block instead of failing the snapshot.
    """
    base = url.rstrip("/")
    if "://" not in base:
        base = f"http://{base}"
    request = urllib.request.Request(
        f"{base}/status", headers={"Accept": "application/json"}
    )
    with urllib.request.urlopen(request, timeout=timeout) as response:
        payload = json.loads(response.read().decode("utf-8"))
    if not isinstance(payload, dict):
        raise ValueError("farm /status did not return a JSON object")
    return payload


@dataclasses.dataclass
class ConsoleSnapshot:
    """One moment of the whole system, as both console faces render it.

    ``trajectories`` and ``regressions`` are plain dicts (the ledger
    view's records and :meth:`~repro.obs.ledger.Regression.to_dict`
    forms), ``farm`` is the polled ``GET /status`` document wrapped with
    reachability, and ``profiles`` are :meth:`~repro.obs.profile.Profile.
    to_dict` documents for the flamegraph panel.  The whole snapshot
    JSON round-trips, so the dash can serve it over ``GET /data`` and a
    stored snapshot re-renders identically.
    """

    generated_at: float
    ledger_root: str
    threshold_pct: float
    trajectories: list
    regressions: list
    farm: dict | None = None
    profiles: list = dataclasses.field(default_factory=list)
    schema: int = CONSOLE_SCHEMA_VERSION

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "ConsoleSnapshot":
        if not isinstance(payload, dict):
            raise ValueError("console snapshot must be a JSON object")
        schema = payload.get("schema", CONSOLE_SCHEMA_VERSION)
        if schema != CONSOLE_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported console snapshot schema {schema!r} "
                f"(this build speaks {CONSOLE_SCHEMA_VERSION})"
            )
        fields = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in payload.items() if k in fields})

    #: Farm server counters that move on every poll (the console's own
    #: ``GET /status`` is itself a request) — ignored by the change
    #: detector so an idle system keeps a stable page version.
    _VOLATILE_FARM_KEYS = ("uptime_s", "requests", "open_connections")

    def comparable(self) -> dict:
        """The snapshot minus its wall-clock stamps and self-inflicted
        counter noise — the dash's change detector: a new poll bumps the
        page version only when this differs."""
        body = self.to_dict()  # asdict deep-copies; nested edits are safe
        body.pop("generated_at", None)
        farm = body.get("farm")
        if isinstance(farm, dict):
            farm.pop("polled_at", None)
            status = farm.get("status")
            if isinstance(status, dict) and isinstance(status.get("server"), dict):
                for key in self._VOLATILE_FARM_KEYS:
                    status["server"].pop(key, None)
        return body


class ConsoleProvider:
    """Builds :class:`ConsoleSnapshot`\\ s for the dash and the TUI.

    ``ledger`` is a root path / :class:`~repro.obs.ledger.Ledger` /
    ``None`` (default root); ``farm_url`` an optional ``repro.farm
    serve`` base; ``profile_specs`` workload specs profiled **once** per
    provider (the runs are deterministic, so the flamegraphs never
    change mid-session).  Bad profile specs fail fast in the
    constructor, with the same :class:`ValueError` the other CLIs
    surface.
    """

    def __init__(
        self,
        ledger=None,
        farm_url: str | None = None,
        profile_specs=(),
        profile_target: str = "risc1",
        threshold_pct: float = 20.0,
        window: int = 5,
        farm_timeout: float = 5.0,
    ):
        from repro.workloads import parse_workload_spec

        self.view = LedgerView(ledger)
        self.farm_url = farm_url
        self.profile_specs = tuple(profile_specs)
        self.profile_target = profile_target
        self.threshold_pct = threshold_pct
        self.window = window
        self.farm_timeout = farm_timeout
        for spec in self.profile_specs:
            parse_workload_spec(spec)  # ValueError before any server starts
        self._profiles: list | None = None

    # -- pieces ---------------------------------------------------------------

    def profiles(self) -> list:
        """Profile documents for ``profile_specs`` (computed once, cached)."""
        if self._profiles is None:
            # imports deferred: tailing a ledger must not pay for the
            # compiler/simulator import graph
            from repro.cc.driver import compile_program
            from repro.obs.profile import profile_run
            from repro.workloads import ALL_WORKLOADS, parse_workload_spec

            documents = []
            for spec in self.profile_specs:
                name, overrides = parse_workload_spec(spec)
                compiled = compile_program(
                    ALL_WORKLOADS[name].source(**overrides),
                    target=self.profile_target,
                    filename=f"{name}.c",
                )
                profile, _result = profile_run(compiled, workload=spec)
                documents.append(profile.to_dict())
            self._profiles = documents
        return self._profiles

    def farm_state(self) -> dict | None:
        """The farm block: polled status, or why the poll failed."""
        if not self.farm_url:
            return None
        state = {"url": self.farm_url, "polled_at": round(time.time(), 3)}
        try:
            state["status"] = fetch_farm_status(self.farm_url, self.farm_timeout)
            state["ok"] = True
            state["error"] = None
        except (OSError, ValueError, urllib.error.URLError) as exc:
            state["status"] = None
            state["ok"] = False
            state["error"] = str(exc) or type(exc).__name__
        return state

    @staticmethod
    def _point(record: dict) -> dict:
        stats = record.get("stats") or {}
        return {
            "run_id": record.get("run_id"),
            "timestamp": record.get("timestamp"),
            "source": record.get("source"),
            "steps_per_s": record.get("steps_per_s"),
            "wall_s": record.get("wall_s"),
            "instructions": stats.get("instructions"),
            "cycles": stats.get("cycles"),
            "exit_code": record.get("exit_code"),
        }

    # -- the snapshot ---------------------------------------------------------

    def snapshot(self) -> ConsoleSnapshot:
        """One coherent view: ledger, regressions and farm read together."""
        records = self.view.records()
        regressions = [
            r.to_dict()
            for r in self.view.regressions(
                threshold_pct=self.threshold_pct,
                window=self.window,
                records=records,
            )
        ]
        regressed_runs = {r["run_id"] for r in regressions}
        trajectories = []
        for trajectory in self.view.trajectories(records=records):
            workload, scale, machine, engine = trajectory.group
            points = [self._point(r) for r in trajectory.records]
            trajectories.append(
                {
                    "label": group_label(trajectory.group),
                    "workload": workload,
                    "scale": scale,
                    "machine": machine,
                    "engine": engine,
                    "runs": len(points),
                    "points": points,
                    "latest_steps_per_s": points[-1]["steps_per_s"],
                    "latest_run_id": points[-1]["run_id"],
                    "regressed": any(
                        p["run_id"] in regressed_runs for p in points
                    ),
                }
            )
        return ConsoleSnapshot(
            generated_at=round(time.time(), 3),
            ledger_root=str(self.view.root),
            threshold_pct=self.threshold_pct,
            trajectories=trajectories,
            regressions=regressions,
            farm=self.farm_state(),
            profiles=self.profiles(),
        )
