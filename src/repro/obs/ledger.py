"""The run ledger: a persistent, append-only flight recorder.

The paper's whole argument rests on *comparisons across runs* — RISC I
against the VAX-like baseline on the same C benchmarks, overflow rates
across window counts — yet a :class:`~repro.core.api.RunResult` is
ephemeral.  The ledger makes every run durable: one schema-versioned
JSONL record per run (workload, machine, engine, the full architectural
stats, metrics, wall time, steps/s, toolchain stamp, git sha, host), so
drift in correctness *or* speed is detected mechanically afterwards.

Layout (default root ``.repro-ledger/``, override with ``$REPRO_LEDGER``)::

    .repro-ledger/
      records.jsonl   one JSON record per run, append-only
      index.jsonl     one compact line per record (id, group, steps/s)

Writes are crash-safe by construction: a record is a single buffered
``write()`` of one line, flushed and fsynced before the index line is
appended, and readers skip torn trailing lines.  The index is a pure
cache — :meth:`Ledger.reindex` rebuilds it from ``records.jsonl``, and
any index/record disagreement resolves in favour of the records file.

Recording is **opt-in** and reaches every sink through one hook,
:func:`maybe_record_run`, called by both machines' ``run()``:

* pass ``record=`` to ``run()`` (``True`` for the default root, a path,
  or a :class:`Ledger`), or
* set ``$REPRO_LEDGER`` (``1`` for the default root, else a root path),
  which also reaches farm worker processes.

Higher layers that know more than the machine (the farm knows the
workload and scale; the experiment harnesses know the spec) enrich the
record through :func:`ledger_context` instead of threading metadata
through every ``run()`` signature.
"""

from __future__ import annotations

import contextlib
import dataclasses
import functools
import json
import os
import platform
import socket
import subprocess
import time
from hashlib import sha256
from pathlib import Path
from typing import Any, Iterator

__all__ = [
    "LEDGER_SCHEMA_VERSION",
    "Ledger",
    "LedgerShard",
    "LedgerView",
    "RunDiff",
    "Trajectory",
    "default_ledger_root",
    "diff_records",
    "environment_stamp",
    "find_regressions",
    "group_key",
    "group_label",
    "ledger_context",
    "make_record",
    "maybe_record_run",
    "resolve_ledger",
]

#: Bump on any backwards-incompatible record change.
LEDGER_SCHEMA_VERSION = 1

#: ``$REPRO_LEDGER`` values meaning "off" (unset and empty also mean off).
_OFF_VALUES = ("0", "off", "no", "false")

#: ``$REPRO_LEDGER`` values meaning "on, default root".
_ON_VALUES = ("1", "on", "yes", "true")


def default_ledger_root() -> Path:
    """``$REPRO_LEDGER`` if it names a path, else ``.repro-ledger`` under cwd."""
    value = os.environ.get("REPRO_LEDGER", "")
    if value and value.lower() not in _OFF_VALUES + _ON_VALUES:
        return Path(value)
    return Path(".repro-ledger")


# -- environment stamping -----------------------------------------------------


def _git_sha() -> str | None:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
            cwd=Path(__file__).parent,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


@functools.lru_cache(maxsize=1)
def environment_stamp() -> dict:
    """Where and with what a run happened: toolchain, git sha, host.

    Cached per process — none of it changes mid-run.  The toolchain stamp
    is the farm's per-module content fingerprint, so ledger records are
    joinable with farm cache keys and ``BENCH_*.json`` files.
    """
    from repro.farm.jobs import toolchain_fingerprint

    return {
        "toolchain": dict(toolchain_fingerprint()),
        "git_sha": _git_sha(),
        "host": {
            "hostname": socket.gethostname(),
            "platform": platform.platform(),
            "python": platform.python_version(),
            "cpu": platform.machine(),
        },
    }


# -- the record ---------------------------------------------------------------


def make_record(
    result,
    *,
    engine: str,
    wall_s: float | None = None,
    workload: str | None = None,
    scale: str | None = None,
    source: str = "api",
    metrics: Any = None,
) -> dict:
    """Build one schema-versioned ledger record from a finished run.

    ``result`` is a :class:`~repro.core.api.RunResult`; ``metrics`` an
    optional :class:`~repro.obs.metrics.MetricsRegistry` (or a plain
    dict already in its ``to_dict`` form).
    """
    steps_per_s = None
    if wall_s and wall_s > 0:
        steps_per_s = round(result.instructions / wall_s, 1)
    if metrics is not None and hasattr(metrics, "to_dict"):
        metrics = metrics.to_dict()
    record = {
        "schema": LEDGER_SCHEMA_VERSION,
        "timestamp": round(time.time(), 3),
        "source": source,
        "workload": workload,
        "scale": scale,
        "machine": result.machine,
        "engine": engine,
        "exit_code": result.exit_code,
        "output_sha": sha256(result.output.encode()).hexdigest()[:16],
        "stats": result.stats.to_dict(),
        "pipeline": (
            result.pipeline.to_dict()
            if getattr(result, "pipeline", None) is not None
            else None
        ),
        "metrics": metrics,
        "wall_s": round(wall_s, 6) if wall_s is not None else None,
        "steps_per_s": steps_per_s,
        **environment_stamp(),
    }
    record["run_id"] = _run_id(record)
    return record


def _run_id(record: dict) -> str:
    """Content hash naming a record (timestamp included, so ids are unique
    across repeated identical runs for all practical purposes)."""
    material = {k: v for k, v in record.items() if k != "run_id"}
    blob = json.dumps(material, sort_keys=True, separators=(",", ":"), default=str)
    return sha256(blob.encode()).hexdigest()[:16]


def group_key(record: dict) -> tuple:
    """The trajectory a record belongs to: (workload, scale, machine, engine)."""
    return (
        record.get("workload"),
        record.get("scale"),
        record.get("machine"),
        record.get("engine"),
    )


# -- the ledger ---------------------------------------------------------------


class Ledger:
    """Append-only JSONL run store with a compact rebuildable index."""

    def __init__(self, root: Path | str | None = None):
        self.root = Path(root) if root is not None else default_ledger_root()

    @property
    def records_path(self) -> Path:
        return self.root / "records.jsonl"

    @property
    def index_path(self) -> Path:
        return self.root / "index.jsonl"

    # -- writing --------------------------------------------------------------

    def append(self, record: dict) -> str:
        """Durably append one record; returns its ``run_id``.

        The record line is flushed and fsynced before the index line is
        written, so a crash can tear (at most) the trailing index line —
        which readers skip and :meth:`reindex` repairs.
        """
        if "run_id" not in record:
            record = dict(record, run_id=_run_id(record))
        self.root.mkdir(parents=True, exist_ok=True)
        line = json.dumps(record, sort_keys=True, default=str)
        with self.records_path.open("a", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        with self.index_path.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps(self._index_line(record), sort_keys=True) + "\n")
        return record["run_id"]

    @staticmethod
    def _index_line(record: dict) -> dict:
        return {
            "run_id": record.get("run_id"),
            "timestamp": record.get("timestamp"),
            "workload": record.get("workload"),
            "scale": record.get("scale"),
            "machine": record.get("machine"),
            "engine": record.get("engine"),
            "source": record.get("source"),
            "steps_per_s": record.get("steps_per_s"),
        }

    def reindex(self) -> int:
        """Rebuild ``index.jsonl`` from the records file; returns the count."""
        records = self.records()
        lines = [
            json.dumps(self._index_line(record), sort_keys=True) for record in records
        ]
        self.root.mkdir(parents=True, exist_ok=True)
        tmp = self.index_path.with_suffix(".jsonl.tmp")
        tmp.write_text("".join(line + "\n" for line in lines), encoding="utf-8")
        os.replace(tmp, self.index_path)
        return len(records)

    # -- reading --------------------------------------------------------------

    @staticmethod
    def _read_jsonl(path: Path) -> list[dict]:
        if not path.is_file():
            return []
        out: list[dict] = []
        for line in path.read_text(encoding="utf-8").splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                value = json.loads(line)
            except ValueError:
                continue  # torn trailing line from a crashed writer
            if isinstance(value, dict):
                out.append(value)
        return out

    def records(self) -> list[dict]:
        """All full records, oldest first (torn lines skipped)."""
        return self._read_jsonl(self.records_path)

    def index(self) -> list[dict]:
        """The compact index, oldest first; rebuilt if missing or stale."""
        index = self._read_jsonl(self.index_path)
        records = self.records()
        if len(index) != len(records):
            self.reindex()
            index = self._read_jsonl(self.index_path)
        return index

    def get(self, selector: str) -> dict:
        """One record by run-id prefix or negative position (``-1`` = latest).

        Raises :class:`KeyError` for no match, :class:`ValueError` for an
        ambiguous prefix.
        """
        records = self.records()
        if selector.lstrip("-").isdigit() and selector.startswith("-"):
            position = int(selector)
            if not records or abs(position) > len(records):
                raise KeyError(f"no record at position {selector}")
            return records[position]
        matches = [
            r for r in records if str(r.get("run_id", "")).startswith(selector)
        ]
        if not matches:
            raise KeyError(f"no record with run id {selector!r}")
        full = {r["run_id"] for r in matches}
        if len(full) > 1:
            raise ValueError(
                f"run id {selector!r} is ambiguous ({len(full)} matches); "
                "use a longer prefix"
            )
        return matches[-1]

    # -- per-worker shards ------------------------------------------------------

    @property
    def shards_dir(self) -> Path:
        return self.root / "shards"

    def shard(self, name: str) -> "LedgerShard":
        """A per-worker append-only shard of this ledger.

        Farm pool workers write to their own shard file instead of
        contending on (and fsyncing) the main records file; the parent
        folds the shards back with :meth:`merge_shards`.
        """
        return LedgerShard(self.root, name)

    def shard_files(self) -> list[Path]:
        if not self.shards_dir.is_dir():
            return []
        return sorted(self.shards_dir.glob("*.jsonl"))

    def merge_shards(self, remove: bool = True) -> int:
        """Fold every shard's records into the main ledger; returns how many.

        The merge is **idempotent**: records are deduplicated by
        ``run_id`` against the main records file, so merging twice (or
        re-merging after a crash mid-merge) never duplicates a run.
        Torn trailing lines in a shard — a worker killed mid-write — are
        skipped exactly like torn lines in the records file.
        """
        shard_paths = self.shard_files()
        if not shard_paths:
            return 0
        seen = {r.get("run_id") for r in self.records()}
        merged = 0
        for path in shard_paths:
            fresh = [
                record
                for record in self._read_jsonl(path)
                if record.get("run_id") and record["run_id"] not in seen
            ]
            for record in fresh:
                self.append(record)
                seen.add(record["run_id"])
                merged += 1
            if remove:
                try:
                    path.unlink()
                except OSError:
                    pass  # an unremovable shard just re-merges as a no-op
        return merged

    # -- retention ------------------------------------------------------------

    def gc(self, keep: int) -> int:
        """Keep the ``keep`` most recent records per trajectory group.

        Returns the number of records dropped.  The rewrite is atomic
        (temp file + ``os.replace``) and reindexes.
        """
        if keep < 1:
            raise ValueError("gc must keep at least one record per group")
        records = self.records()
        by_group: dict[tuple, list[dict]] = {}
        for record in records:
            by_group.setdefault(group_key(record), []).append(record)
        keep_ids = set()
        for group in by_group.values():
            keep_ids.update(r.get("run_id") for r in group[-keep:])
        kept = [r for r in records if r.get("run_id") in keep_ids]
        dropped = len(records) - len(kept)
        if dropped:
            self.root.mkdir(parents=True, exist_ok=True)
            tmp = self.records_path.with_suffix(".jsonl.tmp")
            tmp.write_text(
                "".join(json.dumps(r, sort_keys=True, default=str) + "\n" for r in kept),
                encoding="utf-8",
            )
            os.replace(tmp, self.records_path)
            self.reindex()
        return dropped


class LedgerShard(Ledger):
    """One worker's slice of a ledger: append-only, merge-later.

    Appends go to ``shards/<name>.jsonl`` under the parent ledger's
    root — one ``write()`` + flush per record, **no per-record fsync**
    and no index maintenance (a crash loses at most the torn trailing
    line, which :meth:`Ledger.merge_shards` skips).  Reads and every
    other :class:`Ledger` operation still see the parent root, so a
    shard can answer "what has been merged so far" if asked.
    """

    def __init__(self, root, name: str):
        super().__init__(root)
        self.shard_name = str(name)

    @property
    def shard_path(self) -> Path:
        return self.shards_dir / f"{self.shard_name}.jsonl"

    def append(self, record: dict) -> str:
        if "run_id" not in record:
            record = dict(record, run_id=_run_id(record))
        self.shards_dir.mkdir(parents=True, exist_ok=True)
        with self.shard_path.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps(record, sort_keys=True, default=str) + "\n")
            handle.flush()
        return record["run_id"]


# -- the opt-in hook ----------------------------------------------------------


def resolve_ledger(record=None) -> Ledger | None:
    """Resolve the ``record=`` / ``$REPRO_LEDGER`` opt-in to a ledger.

    Precedence: the explicit argument (``True`` → default root, a
    path → that root, a :class:`Ledger` → itself, ``False`` → off), then
    ``$REPRO_LEDGER`` (off-values and unset → off, on-values → default
    root, anything else → a root path).  Returns ``None`` when recording
    is off.

    When ``$REPRO_LEDGER_SHARD`` names a shard (set by farm pool
    workers), the resolved ledger's appends are redirected to that
    per-worker shard file; the pool merges shards on shutdown.
    """
    ledger: Ledger | None
    if record is not None:
        if record is False:
            return None
        ledger = (
            Ledger()
            if record is True
            else record if isinstance(record, Ledger) else Ledger(record)
        )
    else:
        value = os.environ.get("REPRO_LEDGER", "")
        if not value or value.lower() in _OFF_VALUES:
            return None
        ledger = Ledger()
    shard = os.environ.get("REPRO_LEDGER_SHARD")
    if shard and not isinstance(ledger, LedgerShard):
        return ledger.shard(shard)
    return ledger


#: Metadata pushed by sinks that know more than the machine does.
_context: dict = {}


@contextlib.contextmanager
def ledger_context(**meta) -> Iterator[None]:
    """Enrich records appended while the context is active.

    Recognized keys: ``workload``, ``scale``, ``source``, ``metrics``.
    Nesting composes (inner values win and are restored on exit), so the
    farm can set ``source`` while a runner sets the workload.
    """
    saved = {key: _context.get(key, _MISSING) for key in meta}
    _context.update(meta)
    try:
        yield
    finally:
        for key, value in saved.items():
            if value is _MISSING:
                _context.pop(key, None)
            else:
                _context[key] = value


_MISSING = object()


def maybe_record_run(
    result,
    *,
    engine: str,
    wall_s: float | None = None,
    record=None,
    metrics: Any = None,
    source: str = "api",
) -> str | None:
    """The one hook every machine ``run()`` calls after a finished run.

    No-ops (one env lookup) unless recording was opted in via ``record=``
    or ``$REPRO_LEDGER``.  Returns the appended ``run_id`` or ``None``.
    A ledger that cannot be written must never fail a finished run — the
    failure is reported on stderr and swallowed.
    """
    ledger = resolve_ledger(record)
    if ledger is None:
        return None
    entry = make_record(
        result,
        engine=engine,
        wall_s=wall_s,
        workload=_context.get("workload"),
        scale=_context.get("scale"),
        source=_context.get("source", source),
        metrics=_context.get("metrics", metrics),
    )
    try:
        return ledger.append(entry)
    except OSError as exc:
        import sys

        print(f"warning: run ledger not written: {exc}", file=sys.stderr)
        return None


# -- cross-run diffing --------------------------------------------------------

#: Record fields that must match for two runs of the same workload to be
#: architecturally identical.  ``stats`` is compared field-by-field.
_ARCHITECTURAL_FIELDS = ("machine", "exit_code", "output_sha")

#: Record fields expected to vary run-to-run; differences are reported as
#: informational, never as divergence.  ``pipeline`` is the uarch timing
#: model's accounting — timing-class, like ``wall_s``: a config change
#: legitimately moves it without the architecture diverging.
_INFORMATIONAL_FIELDS = (
    "timestamp",
    "wall_s",
    "steps_per_s",
    "source",
    "metrics",
    "toolchain",
    "git_sha",
    "host",
    "run_id",
    "schema",
    "engine",
    "pipeline",
)


@dataclasses.dataclass
class RunDiff:
    """Field-by-field comparison of two ledger records."""

    a: str
    b: str
    #: architectural divergences: field -> (value_a, value_b)
    diverged: dict[str, tuple]
    #: informational differences (timing, environment): field -> (a, b)
    informational: dict[str, tuple]

    @property
    def clean(self) -> bool:
        """True when the two runs are architecturally identical."""
        return not self.diverged

    def render(self) -> str:
        lines = [f"diff {self.a} .. {self.b}"]
        if self.diverged:
            lines.append(f"DIVERGED: {len(self.diverged)} architectural field(s)")
            for field in sorted(self.diverged):
                va, vb = self.diverged[field]
                lines.append(f"  {field:<32} {va!r} -> {vb!r}")
        else:
            lines.append("architectural stats: identical")
        for field in sorted(self.informational):
            va, vb = self.informational[field]
            lines.append(f"  (info) {field:<25} {va!r} -> {vb!r}")
        return "\n".join(lines) + "\n"


def diff_records(a: dict, b: dict) -> RunDiff:
    """Compare two records; any architectural-stat difference is divergence.

    This turns the engines' bit-identical guarantee into a standing
    cross-run check: two records of the same workload must agree on every
    ``stats`` field, the exit code and the output hash, whatever engine,
    host or toolchain produced them.
    """
    diverged: dict[str, tuple] = {}
    informational: dict[str, tuple] = {}
    for field in _ARCHITECTURAL_FIELDS:
        if a.get(field) != b.get(field):
            diverged[field] = (a.get(field), b.get(field))
    stats_a, stats_b = a.get("stats") or {}, b.get("stats") or {}
    for field in sorted(set(stats_a) | set(stats_b)):
        if stats_a.get(field) != stats_b.get(field):
            diverged[f"stats.{field}"] = (stats_a.get(field), stats_b.get(field))
    for field in ("workload", "scale"):
        if a.get(field) != b.get(field):
            informational[field] = (a.get(field), b.get(field))
    for field in _INFORMATIONAL_FIELDS:
        if a.get(field) != b.get(field):
            informational[field] = (a.get(field), b.get(field))
    return RunDiff(
        a=str(a.get("run_id", "?")),
        b=str(b.get("run_id", "?")),
        diverged=diverged,
        informational=informational,
    )


# -- perf-regression detection ------------------------------------------------


@dataclasses.dataclass
class Regression:
    """One run whose throughput fell below its trajectory's baseline."""

    group: tuple
    run_id: str
    timestamp: float
    steps_per_s: float
    baseline: float
    drop_pct: float
    samples: int

    def render(self) -> str:
        return (
            f"{group_label(self.group)}: {self.steps_per_s:,.0f} steps/s vs baseline "
            f"{self.baseline:,.0f} ({self.drop_pct:+.1f}%, n={self.samples}) "
            f"run {self.run_id}"
        )

    def to_dict(self) -> dict:
        """JSON form, shared by the CLI and the operator console."""
        workload, scale, machine, engine = self.group
        return {
            "workload": workload,
            "scale": scale,
            "machine": machine,
            "engine": engine,
            "run_id": self.run_id,
            "timestamp": self.timestamp,
            "steps_per_s": self.steps_per_s,
            "baseline": self.baseline,
            "drop_pct": round(self.drop_pct, 2),
            "samples": self.samples,
        }


def group_label(group: tuple) -> str:
    """One human-readable name for a trajectory group."""
    workload, scale, machine, engine = group
    return f"{workload or '?'}[{scale or 'default'}] {machine or '?'}/{engine or '?'}"


def _median(values: list[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def find_regressions(
    records: list[dict],
    threshold_pct: float = 20.0,
    window: int = 5,
    latest_only: bool = True,
) -> list[Regression]:
    """Fit the per-trajectory throughput and flag runs beyond the threshold.

    Records are grouped by (workload, scale, machine, engine) and ordered
    as appended.  A run regresses when its ``steps_per_s`` falls more than
    ``threshold_pct`` below the rolling baseline — the median of the up to
    ``window`` preceding runs in its group (runs with no throughput are
    skipped; groups need at least two measured runs to say anything).
    ``latest_only`` checks just each group's newest run, which is the CI
    mode; ``False`` audits the whole trajectory.
    """
    by_group: dict[tuple, list[dict]] = {}
    for record in records:
        if record.get("steps_per_s"):
            by_group.setdefault(group_key(record), []).append(record)
    regressions: list[Regression] = []
    for group, runs in by_group.items():
        start = len(runs) - 1 if latest_only else 1
        for position in range(max(start, 1), len(runs)):
            history = [
                float(r["steps_per_s"]) for r in runs[max(0, position - window) : position]
            ]
            baseline = _median(history)
            if baseline <= 0:
                continue
            current = float(runs[position]["steps_per_s"])
            drop_pct = (current - baseline) / baseline * 100.0
            if drop_pct < -threshold_pct:
                regressions.append(
                    Regression(
                        group=group,
                        run_id=str(runs[position].get("run_id", "?")),
                        timestamp=float(runs[position].get("timestamp") or 0.0),
                        steps_per_s=current,
                        baseline=baseline,
                        drop_pct=drop_pct,
                        samples=len(history),
                    )
                )
    regressions.sort(key=lambda r: r.drop_pct)
    return regressions


# -- the read API -------------------------------------------------------------


@dataclasses.dataclass
class Trajectory:
    """One (workload, scale, machine, engine) group's runs, oldest first."""

    group: tuple
    records: list

    @property
    def label(self) -> str:
        return group_label(self.group)

    @property
    def latest(self) -> dict:
        return self.records[-1]

    def steps_per_s(self) -> list:
        """Per-run throughput in append order (``None`` for untimed runs)."""
        return [r.get("steps_per_s") for r in self.records]


class LedgerView:
    """Read-only query API over a ledger root.

    The one query path shared by the ``diff``/``regressions`` CLIs, the
    web dashboard and the TUI monitor — every reader sees the same
    grouping, ordering and regression fit.  A view **never writes**: it
    reads ``records.jsonl`` directly and skips the index (so it can point
    at read-only roots like the checked-in ``benchmarks/ledger_seed/``).
    """

    def __init__(self, ledger: "Ledger | Path | str | None" = None):
        self.ledger = ledger if isinstance(ledger, Ledger) else Ledger(ledger)

    @property
    def root(self) -> Path:
        return self.ledger.root

    def records(self) -> list[dict]:
        """All records, oldest first (a fresh read every call)."""
        return self.ledger.records()

    def trajectories(self, records: list[dict] | None = None) -> list["Trajectory"]:
        """Every trajectory group, sorted by label, runs in append order."""
        by_group: dict[tuple, list[dict]] = {}
        for record in self.records() if records is None else records:
            by_group.setdefault(group_key(record), []).append(record)
        return sorted(
            (Trajectory(group, runs) for group, runs in by_group.items()),
            key=lambda t: t.label,
        )

    def latest(self, limit: int = 10) -> list[dict]:
        """The newest ``limit`` records across the whole ledger, newest first."""
        return list(reversed(self.records()[-max(0, limit):]))

    def regressions(
        self,
        threshold_pct: float = 20.0,
        window: int = 5,
        latest_only: bool = True,
        records: list[dict] | None = None,
    ) -> list[Regression]:
        """Throughput regressions against each trajectory's rolling baseline."""
        return find_regressions(
            self.records() if records is None else records,
            threshold_pct=threshold_pct,
            window=window,
            latest_only=latest_only,
        )

    def get(self, selector: str) -> dict:
        """One record by run-id prefix or negative position (``-1`` = latest)."""
        return self.ledger.get(selector)

    def diff(self, a: str, b: str) -> RunDiff:
        """Field-by-field comparison of two records named by selector."""
        return diff_records(self.get(a), self.get(b))
