"""Wall-clock profiling spans for the toolchain.

:func:`span` wraps a phase of host-side work (a compiler pass, an
assembly step) in a :data:`~repro.obs.events.EventKind.PHASE` event.  It
is designed for call sites that run with tracing disabled almost always:
with no tracer (or a :class:`~repro.obs.tracer.NullTracer`) the context
manager body reduces to two attribute tests and no clock reads.
"""

from __future__ import annotations

import contextlib

from repro.obs.events import EventKind


@contextlib.contextmanager
def span(tracer, name: str, **data):
    """Time a block of host work as a PHASE event on ``tracer``.

    ``tracer`` may be ``None`` or disabled; then this is (nearly) free.
    """
    if tracer is None or not tracer.enabled or not tracer.wants(EventKind.PHASE):
        yield
        return
    start = tracer.now_us()
    try:
        yield
    finally:
        tracer.phase(name, start, tracer.now_us() - start, **data)
