"""Reproduction of *RISC I: A Reduced Instruction Set VLSI Computer*.

The package's minimal public API::

    from repro import CPU, compile_program, ALL_WORKLOADS

Heavier surfaces live in their subpackages (``repro.core``, ``repro.cc``,
``repro.farm``, ``repro.experiments``, ...).  Attributes are resolved
lazily so ``import repro`` stays cheap — the farm imports it just to
stamp cache artifacts with :data:`__version__`.
"""

from __future__ import annotations

#: Keep in sync with ``pyproject.toml`` — the farm's cache keys include it.
__version__ = "1.0.0"

__all__ = [
    "ALL_WORKLOADS",
    "CPU",
    "Machine",
    "RunResult",
    "Tracer",
    "compile_program",
    "__version__",
]


def __getattr__(name: str):
    if name == "CPU":
        from repro.core.cpu import CPU

        return CPU
    if name == "compile_program":
        from repro.cc.driver import compile_program

        return compile_program
    if name == "ALL_WORKLOADS":
        from repro.workloads import ALL_WORKLOADS

        return ALL_WORKLOADS
    if name in ("Machine", "RunResult"):
        from repro.core import api

        return getattr(api, name)
    if name == "Tracer":
        from repro.obs.tracer import Tracer

        return Tracer
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__() -> list[str]:
    return sorted(__all__)
