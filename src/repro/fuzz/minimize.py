"""Statement-level delta debugging for divergent fuzz programs.

Given a program two oracles disagree about, shrink it until removing any
further statement makes the disagreement vanish.  Interestingness is
"compiles AND reproduces the *same* divergence signature" (same failed
check, same differing fields — see
:meth:`repro.fuzz.crosscheck.CrossCheckReport.signature`), so the
minimizer cannot wander off onto a different bug mid-shrink.

Minimization is **removal-only**.  The generator's termination
invariants (loop counters stepped in ``for`` headers or non-removable
block tails, ``continue`` only under ``for``) survive any subset of
statements, so a shrunken program still terminates; passes that *move*
statements between loop contexts could break that and are deliberately
not implemented.

Two entry points:

* :func:`minimize_program` — works on the generator's statement tree
  (:class:`~repro.fuzz.gen.FuzzProgram`), the precise path used for
  campaign seeds;
* :func:`minimize_source` — works on any source text via a brace-aware
  line reducer; used when all we have is a ``.c`` file.  When ``seed``
  is given it regenerates the tree and takes the precise path.
"""

from __future__ import annotations

import copy
from typing import Callable

from repro.fuzz.crosscheck import DEFAULT_MAX_STEPS, CrossCheckReport, crosscheck_source
from repro.fuzz.gen import DEFAULT_PROFILE, BlockStmt, FuzzProgram, Stmt, generate_program

#: Hard cap on full fixpoint rounds; each round is itself monotone
#: shrinking, so this only guards pathological oscillation.
MAX_ROUNDS = 8


class MinimizeError(ValueError):
    """The input program does not reproduce a divergence at all."""


def _interesting_for(
    signature: str, max_steps: int, counter: list[int]
) -> Callable[[str], bool]:
    def interesting(source: str) -> bool:
        counter[0] += 1
        report = crosscheck_source(source, max_steps=max_steps)
        return report.status == "divergent" and report.signature() == signature

    return interesting


# -- list-level ddmin ----------------------------------------------------------------


def _ddmin_list(items: list, test: Callable[[list], bool]) -> list:
    """Classic ddmin: a minimal sublist of ``items`` still passing ``test``.

    ``test`` receives a candidate sublist and must be free of side
    effects.  The empty list is tried first — the common fixpoint.
    """
    if not items:
        return items
    if test([]):
        return []
    current = list(items)
    granularity = 2
    while len(current) >= 2:
        chunk = max(1, (len(current) + granularity - 1) // granularity)
        shrunk = False
        start = 0
        while start < len(current):
            candidate = current[:start] + current[start + chunk :]
            if candidate and test(candidate):
                current = candidate
                shrunk = True
                # keep scanning from the same offset: the next chunk
                # slid into this position
            else:
                start += chunk
        if shrunk:
            granularity = max(granularity - 1, 2)
        elif granularity >= len(current):
            break
        else:
            granularity = min(len(current), granularity * 2)
    if len(current) == 1 and test([]):
        return []
    return current


# -- tree-path minimization ------------------------------------------------------------


def _all_blocks(program: FuzzProgram) -> list[BlockStmt]:
    blocks: list[BlockStmt] = []

    def walk(stmts: list[Stmt]) -> None:
        for stmt in stmts:
            if isinstance(stmt, BlockStmt):
                blocks.append(stmt)
                for child in stmt.child_lists():
                    walk(child)

    for fn in program.functions:
        walk(fn.body)
    return blocks


def minimize_program(
    program: FuzzProgram,
    *,
    signature: str | None = None,
    max_steps: int = DEFAULT_MAX_STEPS,
) -> tuple[str, CrossCheckReport, int]:
    """Shrink a divergent generated program on its statement tree.

    Returns ``(minimized_source, report_on_minimized, tests_run)``.
    Raises :class:`MinimizeError` if the program doesn't diverge (or
    doesn't match ``signature``) to begin with.
    """
    program = copy.deepcopy(program)
    baseline = crosscheck_source(program.render(), max_steps=max_steps)
    if baseline.status != "divergent":
        raise MinimizeError(f"program does not diverge (status: {baseline.status})")
    if signature is None:
        signature = baseline.signature()
    elif baseline.signature() != signature:
        raise MinimizeError(
            f"program diverges with a different signature:\n"
            f"  want {signature}\n  have {baseline.signature()}"
        )
    tests = [0]
    interesting = _interesting_for(signature, max_steps, tests)

    for _ in range(MAX_ROUNDS):
        before = program.render()

        # pass 1: drop whole helper functions
        for fn in [f for f in program.functions if f.name != "main"]:
            keep = list(program.functions)
            keep.remove(fn)
            candidate = _with_functions(program, keep)
            if interesting(candidate.render()):
                program = candidate

        # pass 2: ddmin every statement list (live lists: mutating them
        # mutates the program)
        for stmts in program.statement_lists():
            if not stmts:
                continue

            def test(candidate: list, _stmts: list = stmts) -> bool:
                saved = list(_stmts)
                _stmts[:] = candidate
                ok = interesting(program.render())
                if not ok:
                    _stmts[:] = saved
                return ok

            _ddmin_inplace(stmts, test)

        # pass 3: drop else branches
        for block in _all_blocks(program):
            if block.else_body is not None:
                saved = block.else_body
                block.else_body = None
                if not interesting(program.render()):
                    block.else_body = saved

        # pass 4: drop global and prologue lines one at a time
        for lines in [program.globals] + [fn.prologue for fn in program.functions]:
            index = 0
            while index < len(lines):
                saved = lines[index]
                del lines[index]
                if interesting(program.render()):
                    continue  # next line slid into this index
                lines.insert(index, saved)
                index += 1

        if program.render() == before:
            break

    final_source = program.render()
    final_report = crosscheck_source(final_source, max_steps=max_steps)
    return final_source, final_report, tests[0]


def _ddmin_inplace(stmts: list, test: Callable[[list], bool]) -> None:
    """ddmin over a live list whose ``test`` applies/reverts in place."""
    if test([]):
        return
    granularity = 2
    while len(stmts) >= 2:
        chunk = max(1, (len(stmts) + granularity - 1) // granularity)
        shrunk = False
        start = 0
        while start < len(stmts):
            candidate = stmts[:start] + stmts[start + chunk :]
            if candidate and test(candidate):
                shrunk = True
            else:
                start += chunk
        if shrunk:
            granularity = max(granularity - 1, 2)
        elif granularity >= len(stmts):
            break
        else:
            granularity = min(len(stmts), granularity * 2)
    if len(stmts) == 1:
        test([])


def _with_functions(program: FuzzProgram, functions: list) -> FuzzProgram:
    return FuzzProgram(
        seed=program.seed,
        profile=program.profile,
        globals=list(program.globals),
        functions=functions,
    )


def minimize_seed(
    seed: int,
    profile: str = DEFAULT_PROFILE,
    *,
    signature: str | None = None,
    max_steps: int = DEFAULT_MAX_STEPS,
) -> tuple[str, CrossCheckReport, int]:
    """Regenerate the seed's program and minimize it on its tree."""
    return minimize_program(
        generate_program(seed, profile), signature=signature, max_steps=max_steps
    )


# -- source-text minimization ----------------------------------------------------------


def _units(lines: list[str]) -> list[list[str]]:
    """Group lines into removable units: single lines or balanced blocks."""
    units: list[list[str]] = []
    depth = 0
    current: list[str] = []
    for line in lines:
        current.append(line)
        depth += line.count("{") - line.count("}")
        if depth == 0:
            units.append(current)
            current = []
    if current:  # unbalanced tail — keep as one unit, never removed piecemeal
        units.append(current)
    return units


def minimize_source(
    source: str,
    *,
    seed: int | None = None,
    profile: str = DEFAULT_PROFILE,
    signature: str | None = None,
    max_steps: int = DEFAULT_MAX_STEPS,
) -> tuple[str, CrossCheckReport, int]:
    """Shrink any divergent source text.

    With ``seed``, takes the precise statement-tree path (the source is
    regenerated from the seed).  Without, applies a brace-aware line
    reducer: top-level units (lines / balanced blocks) are ddmin'd, then
    the interiors of surviving blocks, to a fixpoint.
    """
    if seed is not None:
        return minimize_seed(seed, profile, signature=signature, max_steps=max_steps)

    baseline = crosscheck_source(source, max_steps=max_steps)
    if baseline.status != "divergent":
        raise MinimizeError(f"source does not diverge (status: {baseline.status})")
    if signature is None:
        signature = baseline.signature()
    elif baseline.signature() != signature:
        raise MinimizeError("source diverges with a different signature")
    tests = [0]
    interesting = _interesting_for(signature, max_steps, tests)

    lines = source.split("\n")
    for _ in range(MAX_ROUNDS):
        before = lines

        # top-level: remove whole units
        units = _units(lines)
        kept = _ddmin_list(units, lambda cand: interesting("\n".join(l for u in cand for l in u)))
        lines = [line for unit in kept for line in unit]

        # interior: remove lines inside each surviving multi-line block
        index = 0
        while index < len(lines):
            line = lines[index]
            candidate = lines[:index] + lines[index + 1 :]
            # only try lines that keep braces balanced when removed
            if line.count("{") == line.count("}") and interesting("\n".join(candidate)):
                lines = candidate
            else:
                index += 1

        if lines == before:
            break

    final_source = "\n".join(lines)
    final_report = crosscheck_source(final_source, max_steps=max_steps)
    return final_source, final_report, tests[0]
