"""Fuzz campaigns: fan seeds out through the farm, triage what comes back.

A campaign is a seed range turned into ``kind="fuzz"`` farm jobs and
submitted through the shared :class:`~repro.farm.api.FarmClient` pool —
so cross-check results are content-addressed artifacts like any other
farm work (re-running a campaign on an unchanged toolchain is all cache
hits), and campaign throughput scales with the worker pool.

For every divergent seed the campaign, in the parent process:

* shrinks the program with the statement-level minimizer
  (:mod:`repro.fuzz.minimize`), pinned to the original divergence
  signature;
* writes the minimized repro into the corpus directory
  (``tests/fuzz_corpus/`` in the repo) so it becomes a permanent
  regression test;
* files the divergence in the run ledger: one pseudo-record per
  disagreeing oracle run, their :func:`~repro.obs.ledger.diff_records`
  artifact, and the full + minimized program text.

The triage report is deterministic — seeds, signatures and sources only,
no timestamps — so a fixed-seed campaign is byte-identical across runs.
"""

from __future__ import annotations

import dataclasses
import json
from collections import Counter
from pathlib import Path
from typing import Callable, Iterable

from repro.fuzz.crosscheck import CrossCheckReport, crosscheck_seed
from repro.fuzz.gen import DEFAULT_PROFILE, generate_source
from repro.fuzz.minimize import MinimizeError, minimize_seed

#: machine / engine tags for ledger pseudo-records, per oracle name
_ORACLE_MACHINE = {
    "risc-ref": ("risc1", "reference"),
    "risc-fast": ("risc1", "fast"),
    "vax-ref": ("cisc", "reference"),
    "vax-fast": ("cisc", "fast"),
    "ir": ("ir", "ir"),
}


@dataclasses.dataclass
class DivergenceCase:
    """One divergent seed, fully triaged."""

    seed: int
    profile: str
    signature: str
    report: CrossCheckReport
    source: str
    minimized: str | None = None
    minimize_error: str | None = None
    corpus_path: str | None = None
    ledger_runs: list[str] = dataclasses.field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "profile": self.profile,
            "signature": self.signature,
            "report": self.report.to_dict(),
            "source": self.source,
            "minimized": self.minimized,
            "minimize_error": self.minimize_error,
            "corpus_path": self.corpus_path,
            "ledger_runs": self.ledger_runs,
        }


@dataclasses.dataclass
class CampaignReport:
    """Deterministic summary of one campaign (byte-stable per seed set)."""

    profile: str
    max_steps: int
    seeds: int
    checked: int = 0
    ok: int = 0
    cache_hits: int = 0
    statuses: Counter = dataclasses.field(default_factory=Counter)
    compile_errors: list = dataclasses.field(default_factory=list)  # (seed, message)
    cases: list[DivergenceCase] = dataclasses.field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.cases and not self.compile_errors

    def to_dict(self) -> dict:
        return {
            "profile": self.profile,
            "max_steps": self.max_steps,
            "seeds": self.seeds,
            "checked": self.checked,
            "ok": self.ok,
            "statuses": dict(sorted(self.statuses.items())),
            "compile_errors": [list(pair) for pair in self.compile_errors],
            "divergences": [case.to_dict() for case in self.cases],
        }

    def render(self) -> str:
        lines = [
            f"fuzz campaign: profile={self.profile} seeds={self.seeds} "
            f"checked={self.checked} ok={self.ok} divergent={len(self.cases)} "
            f"compile-errors={len(self.compile_errors)}"
        ]
        by_signature: dict[str, list[int]] = {}
        for case in self.cases:
            by_signature.setdefault(case.signature, []).append(case.seed)
        for signature in sorted(by_signature):
            seeds = by_signature[signature]
            lines.append(f"  [{len(seeds)} seed(s)] {signature or '(no signature)'}")
            lines.append(f"    seeds: {', '.join(str(s) for s in sorted(seeds)[:10])}"
                         + (" ..." if len(seeds) > 10 else ""))
        for seed, message in self.compile_errors:
            lines.append(f"  compile-error seed {seed}: {message}")
        return "\n".join(lines)


def _file_divergence(ledger, case: DivergenceCase) -> None:
    """Append the divergence to the run ledger as a diff artifact."""
    from repro.obs.ledger import diff_records

    workload = f"fuzz:{case.profile}:{case.seed}"
    run_ids: dict[str, str] = {}
    oracle_records: dict[str, dict] = {}
    for div in case.report.divergences:
        for name in (div.left, div.right):
            if name in run_ids:
                continue
            run = case.report.oracles.get(name)
            if run is None:
                continue
            machine, engine = _ORACLE_MACHINE[name]
            record = {
                "schema": 1,
                "source": "fuzz",
                "workload": workload,
                "scale": case.profile,
                "machine": machine,
                "engine": engine,
                "oracle": name,
                "outcome": run["outcome"],
                "exit_code": run["exit_code"],
                "output_sha": run["output_sha"],
                "stats": run["stats"] or {},
                "program_sha": case.report.source_sha,
            }
            run_ids[name] = ledger.append(record)
            oracle_records[name] = record
    for div in case.report.divergences:
        left = oracle_records.get(div.left)
        right = oracle_records.get(div.right)
        diff_text = None
        if left is not None and right is not None:
            diff_text = diff_records(left, right).render()
        artifact = {
            "schema": 1,
            "source": "fuzz",
            "kind": "fuzz-divergence",
            "workload": workload,
            "seed": case.seed,
            "profile": case.profile,
            "check": div.check,
            "signature": case.signature,
            "fields": {k: list(v) for k, v in div.fields.items()},
            "diff": diff_text,
            "left_run": run_ids.get(div.left),
            "right_run": run_ids.get(div.right),
            "program_sha": case.report.source_sha,
            "program": case.source,
            "minimized": case.minimized,
        }
        case.ledger_runs.append(ledger.append(artifact))


def corpus_filename(seed: int, profile: str) -> str:
    return f"seed{seed:08d}_{profile}.c"


def _write_corpus(corpus_dir: Path, case: DivergenceCase) -> None:
    corpus_dir.mkdir(parents=True, exist_ok=True)
    body = case.minimized if case.minimized is not None else case.source
    header = (
        f"/* fuzz divergence: seed={case.seed} profile={case.profile}\n"
        f" * signature: {case.signature}\n"
        f" * minimized: {'yes' if case.minimized is not None else 'no'}\n"
        f" */\n"
    )
    path = corpus_dir / corpus_filename(case.seed, case.profile)
    path.write_text(header + body + "\n", encoding="utf-8")
    case.corpus_path = str(path)


def run_campaign(
    seeds: Iterable[int],
    profile: str = DEFAULT_PROFILE,
    *,
    max_steps: int | None = None,
    client=None,
    serial: bool = False,
    minimize: bool = True,
    corpus_dir: str | Path | None = None,
    ledger=None,
    progress: Callable[[int, int, int], None] | None = None,
) -> CampaignReport:
    """Cross-check every seed; triage, minimize and file what diverges.

    ``client`` is a :class:`~repro.farm.api.FarmClient` (defaults to the
    process-shared pool unless ``serial=True``, which runs in-process —
    no farm, no cache).  ``ledger`` is a
    :class:`~repro.obs.ledger.Ledger`, ``None`` for the default root, or
    ``False`` to disable filing.  ``progress(done, total, divergent)``
    is called after every seed.
    """
    from repro.fuzz.crosscheck import DEFAULT_MAX_STEPS

    if max_steps is None:
        max_steps = DEFAULT_MAX_STEPS
    seed_list = list(seeds)
    report = CampaignReport(profile=profile, max_steps=max_steps, seeds=len(seed_list))

    if ledger is None:
        from repro.obs.ledger import Ledger

        ledger = Ledger()

    def finish_one(seed: int, check: CrossCheckReport, hit: bool) -> None:
        report.checked += 1
        report.cache_hits += int(hit)
        report.statuses[check.status] += 1
        if check.status == "ok":
            report.ok += 1
        elif check.status == "compile-error":
            report.compile_errors.append((seed, check.compile_error))
        else:
            case = DivergenceCase(
                seed=seed,
                profile=profile,
                signature=check.signature(),
                report=check,
                source=generate_source(seed, profile),
            )
            if minimize:
                try:
                    minimized, _final_report, _tests = minimize_seed(
                        seed, profile, signature=case.signature, max_steps=max_steps
                    )
                    case.minimized = minimized
                except MinimizeError as exc:
                    case.minimize_error = str(exc)
            if corpus_dir is not None:
                _write_corpus(Path(corpus_dir), case)
            if ledger is not False:
                _file_divergence(ledger, case)
            report.cases.append(case)
        if progress is not None:
            progress(report.checked, report.seeds, len(report.cases))

    if serial:
        for seed in seed_list:
            finish_one(seed, crosscheck_seed(seed, profile, max_steps=max_steps), False)
        report.cases.sort(key=lambda c: c.seed)
        return report

    from repro.farm.api import shared_client
    from repro.farm.jobs import fuzz_job

    if client is None:
        client = shared_client()

    # submit in waves so the in-flight queue stays bounded on big campaigns
    wave = 256
    for base in range(0, len(seed_list), wave):
        futures = [
            (seed, client.submit(fuzz_job(seed, profile, max_steps=max_steps)))
            for seed in seed_list[base : base + wave]
        ]
        for seed, future in futures:
            value = future.result()
            status = future.status()
            finish_one(seed, value, status.status == "hit")
    report.cases.sort(key=lambda c: c.seed)
    return report


def save_report(report: CampaignReport, path: str | Path) -> None:
    Path(path).write_text(
        json.dumps(report.to_dict(), indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


def triage_text(payload: dict) -> str:
    """Human triage view of a saved campaign report (grouped by signature)."""
    lines = [
        f"profile={payload.get('profile')} seeds={payload.get('seeds')} "
        f"checked={payload.get('checked')} ok={payload.get('ok')}"
    ]
    statuses = payload.get("statuses", {})
    if statuses:
        lines.append("statuses: " + ", ".join(f"{k}={v}" for k, v in sorted(statuses.items())))
    groups: dict[str, list[dict]] = {}
    for case in payload.get("divergences", []):
        groups.setdefault(case.get("signature", ""), []).append(case)
    if not groups and not payload.get("compile_errors"):
        lines.append("no divergences.")
    for signature in sorted(groups):
        cases = groups[signature]
        lines.append("")
        lines.append(f"== {len(cases)} seed(s): {signature or '(no signature)'}")
        for case in cases[:5]:
            lines.append(f"   seed {case['seed']}  corpus={case.get('corpus_path') or '-'}")
        sample = cases[0]
        body = sample.get("minimized") or sample.get("source") or ""
        lines.append("   --- minimized repro (first case) ---")
        lines.extend("   | " + line for line in body.split("\n"))
    for seed, message in payload.get("compile_errors", []):
        lines.append(f"compile-error seed {seed}: {message}")
    return "\n".join(lines)
