"""Run one program on every execution oracle and compare the results.

The harness compiles a program **once per target** and then runs five
oracles over the two images:

========  =========================================================
name      what it exercises
========  =========================================================
risc-ref  RISC I plain ``step()`` interpreter (the semantics anchor)
risc-fast RISC I :class:`~repro.core.engine.PredecodedEngine`
vax-ref   VAX baseline with the per-PC operand decode cache OFF
vax-fast  VAX baseline with the decode cache ON
ir        the IR-level interpreter (:mod:`repro.cc.irvm`)
========  =========================================================

Two contracts are checked:

* **same machine, different engine** (risc-ref vs risc-fast, vax-ref vs
  vax-fast): bit-identical — outcome, exit code, console output and the
  *entire* ``stats.to_dict()`` must match field for field;
* **different machines** (risc-ref vs vax-ref vs ir): semantic — exit
  code and console output must match whenever both runs halted (the
  machines legitimately disagree about stats, and a step-limited run has
  no comparable final state, so those comparisons are skipped).

Reports are plain deterministic dicts — no timestamps, no wall-clock —
so a fixed-seed campaign produces byte-identical triage output on every
run, and the farm can cache reports by job key.
"""

from __future__ import annotations

import dataclasses
import hashlib
from typing import Any

from repro.cc import irvm
from repro.cc.driver import CompileError, compile_program, compile_to_ir, run_compiled
from repro.core.api import StepLimitExceeded
from repro.fuzz.gen import DEFAULT_PROFILE, generate_source
from repro.machine.traps import Trap

REPORT_SCHEMA = 1

#: Step budget per oracle run.  Generated programs are bounded by
#: construction (see :mod:`repro.fuzz.gen`); anything that hits this is
#: either a generator invariant violation or an engine livelock — both
#: worth a divergence-grade look, so limits are never silently equal.
DEFAULT_MAX_STEPS = 2_000_000

ORACLES = ("risc-ref", "risc-fast", "vax-ref", "vax-fast", "ir")

#: Same-machine pairs: full bit-identical contract.
ENGINE_PAIRS = (
    ("risc-ref", "risc-fast", "risc1: reference vs predecoded engine"),
    ("vax-ref", "vax-fast", "vax: decode cache off vs on"),
)

#: Cross-machine pairs: exit code + console only.
CROSS_PAIRS = (
    ("risc-ref", "vax-ref", "risc1 vs vax"),
    ("risc-ref", "ir", "risc1 vs ir interpreter"),
)


def _sha(text: str) -> str:
    return hashlib.sha256(text.encode()).hexdigest()[:16]


def _flatten(payload: Any, prefix: str = "") -> dict[str, Any]:
    if isinstance(payload, dict):
        flat: dict[str, Any] = {}
        for key, value in payload.items():
            flat.update(_flatten(value, f"{prefix}{key}."))
        return flat
    return {prefix[:-1]: payload}


def _dict_diff(a: dict, b: dict) -> dict[str, tuple[Any, Any]]:
    """Flattened field -> (left, right) for every differing field."""
    fa, fb = _flatten(a), _flatten(b)
    keys = sorted(set(fa) | set(fb))
    return {k: (fa.get(k), fb.get(k)) for k in keys if fa.get(k) != fb.get(k)}


@dataclasses.dataclass
class Divergence:
    """One failed comparison between two oracle runs."""

    check: str  # e.g. "risc1: reference vs predecoded engine"
    kind: str  # "engine" (bit-identical contract) or "cross" (semantic)
    left: str  # oracle name
    right: str  # oracle name
    fields: dict[str, tuple[Any, Any]]  # field -> (left value, right value)

    def signature(self) -> str:
        """Stable identity used by the minimizer: same check, same fields."""
        return f"{self.check}|{','.join(sorted(self.fields))}"

    def to_dict(self) -> dict:
        return {
            "check": self.check,
            "kind": self.kind,
            "left": self.left,
            "right": self.right,
            "fields": {k: list(v) for k, v in self.fields.items()},
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Divergence":
        return cls(
            check=payload["check"],
            kind=payload["kind"],
            left=payload["left"],
            right=payload["right"],
            fields={k: tuple(v) for k, v in payload["fields"].items()},
        )

    def render(self) -> str:
        lines = [f"{self.check}  [{self.left} vs {self.right}]"]
        for field, (a, b) in sorted(self.fields.items()):
            lines.append(f"  {field}: {_clip(a)} != {_clip(b)}")
        return "\n".join(lines)


def _clip(value: Any, limit: int = 80) -> str:
    text = repr(value)
    return text if len(text) <= limit else text[: limit - 3] + "..."


@dataclasses.dataclass
class CrossCheckReport:
    """Everything one cross-checked program produced, deterministically."""

    source_sha: str
    status: str = "ok"  # "ok" | "divergent" | "compile-error"
    seed: int | None = None
    profile: str | None = None
    max_steps: int = DEFAULT_MAX_STEPS
    compile_error: str | None = None
    oracles: dict[str, dict] = dataclasses.field(default_factory=dict)
    divergences: list[Divergence] = dataclasses.field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def signature(self) -> str:
        """Divergence identity for the minimizer (order-independent)."""
        return ";".join(sorted(d.signature() for d in self.divergences))

    def to_dict(self) -> dict:
        return {
            "schema": REPORT_SCHEMA,
            "source_sha": self.source_sha,
            "status": self.status,
            "seed": self.seed,
            "profile": self.profile,
            "max_steps": self.max_steps,
            "compile_error": self.compile_error,
            "oracles": self.oracles,
            "divergences": [d.to_dict() for d in self.divergences],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "CrossCheckReport":
        return cls(
            source_sha=payload["source_sha"],
            status=payload["status"],
            seed=payload.get("seed"),
            profile=payload.get("profile"),
            max_steps=payload.get("max_steps", DEFAULT_MAX_STEPS),
            compile_error=payload.get("compile_error"),
            oracles=payload.get("oracles", {}),
            divergences=[Divergence.from_dict(d) for d in payload.get("divergences", [])],
        )

    def render(self) -> str:
        head = f"crosscheck {self.source_sha}"
        if self.seed is not None:
            head += f" seed={self.seed} profile={self.profile}"
        lines = [f"{head}: {self.status}"]
        for name in ORACLES:
            run = self.oracles.get(name)
            if run is None:
                continue
            lines.append(
                f"  {name:9s} outcome={run['outcome']:<12s} exit={run['exit_code']!s:>6s}"
                f" out_sha={run['output_sha'] or '-'} steps={run['instructions']}"
            )
        if self.compile_error:
            lines.append(f"  compile error: {self.compile_error}")
        for div in self.divergences:
            lines.append("  " + div.render().replace("\n", "\n  "))
        return "\n".join(lines)


# -- running the oracles -----------------------------------------------------


def _run_machine_oracle(compiled, engine: str, max_steps: int) -> dict:
    """One machine run, folded into the comparable oracle-result shape."""
    try:
        result = run_compiled(compiled, max_steps=max_steps, engine=engine, record=False)
        return {
            "outcome": "halt",
            "exit_code": result.exit_code,
            "output": result.output,
            "output_sha": _sha(result.output),
            "instructions": result.stats.instructions,
            "stats": result.stats.to_dict(),
        }
    except StepLimitExceeded as exc:
        return {
            "outcome": "limit",
            "exit_code": None,
            "output": None,
            "output_sha": None,
            "instructions": getattr(exc.stats, "instructions", None),
            "stats": exc.stats.to_dict() if exc.stats is not None else None,
        }
    except Trap as exc:
        return {
            "outcome": f"trap:{exc.kind.name}@{exc.pc:#x}" if exc.pc is not None else f"trap:{exc.kind.name}",
            "exit_code": None,
            "output": None,
            "output_sha": None,
            "instructions": None,
            "stats": None,
        }
    except RecursionError:
        return _error_result("RecursionError")
    except Exception as exc:  # engine crash: comparable, never fatal
        return _error_result(f"{type(exc).__name__}: {exc}")


def _error_result(detail: str) -> dict:
    return {
        "outcome": f"error:{detail[:160]}",
        "exit_code": None,
        "output": None,
        "output_sha": None,
        "instructions": None,
        "stats": None,
    }


def _run_ir_oracle(ir_program) -> dict:
    try:
        result = irvm.run_ir(ir_program)
        return {
            "outcome": "halt",
            "exit_code": result.exit_code,
            "output": result.output,
            "output_sha": _sha(result.output),
            "instructions": result.counts.total,
            "stats": result.counts.to_dict(),
        }
    except RecursionError:
        return _error_result("RecursionError")
    except Exception as exc:
        return _error_result(f"{type(exc).__name__}: {exc}")


def _compare_engine_pair(left: dict, right: dict) -> dict[str, tuple[Any, Any]]:
    """Bit-identical contract: outcome, exit, console, full stats."""
    fields: dict[str, tuple[Any, Any]] = {}
    for key in ("outcome", "exit_code", "output"):
        if left[key] != right[key]:
            fields[key] = (left[key], right[key])
    if left["stats"] != right["stats"]:
        fields.update(
            {f"stats.{k}": v for k, v in _dict_diff(left["stats"] or {}, right["stats"] or {}).items()}
        )
    return fields


def _compare_cross_pair(left: dict, right: dict) -> dict[str, tuple[Any, Any]]:
    """Semantic contract: exit code + console, skipped on step limits."""
    if left["outcome"] == "limit" or right["outcome"] == "limit":
        return {}
    fields: dict[str, tuple[Any, Any]] = {}
    if left["outcome"] != right["outcome"]:
        fields["outcome"] = (left["outcome"], right["outcome"])
    for key in ("exit_code", "output"):
        if left[key] != right[key]:
            fields[key] = (left[key], right[key])
    return fields


def crosscheck_source(
    source: str,
    *,
    seed: int | None = None,
    profile: str | None = None,
    max_steps: int = DEFAULT_MAX_STEPS,
) -> CrossCheckReport:
    """Compile ``source`` once per target and cross-check all five oracles."""
    report = CrossCheckReport(
        source_sha=_sha(source), seed=seed, profile=profile, max_steps=max_steps
    )
    try:
        ir_program = compile_to_ir(source)
        risc = compile_program(source, target="risc1")
        vax = compile_program(source, target="cisc")
    except CompileError as exc:
        report.status = "compile-error"
        report.compile_error = str(exc)
        return report

    report.oracles = {
        "risc-ref": _run_machine_oracle(risc, "reference", max_steps),
        "risc-fast": _run_machine_oracle(risc, "fast", max_steps),
        "vax-ref": _run_machine_oracle(vax, "reference", max_steps),
        "vax-fast": _run_machine_oracle(vax, "fast", max_steps),
        "ir": _run_ir_oracle(ir_program),
    }

    for left, right, check in ENGINE_PAIRS:
        fields = _compare_engine_pair(report.oracles[left], report.oracles[right])
        if fields:
            report.divergences.append(Divergence(check, "engine", left, right, fields))
    for left, right, check in CROSS_PAIRS:
        fields = _compare_cross_pair(report.oracles[left], report.oracles[right])
        if fields:
            report.divergences.append(Divergence(check, "cross", left, right, fields))

    report.status = "divergent" if report.divergences else "ok"
    return report


def crosscheck_seed(
    seed: int,
    profile: str = DEFAULT_PROFILE,
    *,
    max_steps: int = DEFAULT_MAX_STEPS,
) -> CrossCheckReport:
    """Generate the seed's program and cross-check it."""
    return crosscheck_source(
        generate_source(seed, profile), seed=seed, profile=profile, max_steps=max_steps
    )
