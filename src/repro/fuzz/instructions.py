"""Seeded random RISC I instructions, in canonical form.

This is the instruction-level half of the fuzzer: where :mod:`repro.fuzz.gen`
emits whole C programs, this module emits single :class:`Instruction` values
covering every opcode of Table III, for the encode/decode/disassemble/assemble
round-trip property tests::

    encode(inst) == assemble(disassemble(encode(inst), pc=pc)) at pc

*Canonical* means fields the instruction does not architecturally use are
zero, and the SCC bit is set only where it is meaningful — exactly the words
the assembler itself can produce.  A non-canonical word (say, garbage in the
unused rs1 field of CALLINT) decodes fine, but cannot survive a trip through
text because the text has nowhere to carry the garbage.
"""

from __future__ import annotations

import random
from typing import Iterator

from repro.isa.encoding import Instruction, S2_MAX, S2_MIN, Y_MAX, Y_MIN
from repro.isa.opcodes import ALL_OPCODES, Category, Format, Opcode, opcode_info

#: Opcodes whose DEST field holds a 4-bit jump condition.
_COND_OPS = frozenset({Opcode.JMP, Opcode.JMPR})
#: Opcodes taking only a single register operand (dest).
_DEST_ONLY_OPS = frozenset(
    {Opcode.CALLINT, Opcode.GTLPC, Opcode.GETPSW, Opcode.PUTPSW}
)
#: Returns: dest is unused (always 0), rs1 + s2 form the target.
_RET_OPS = frozenset({Opcode.RET, Opcode.RETINT})

#: A disassembly pc comfortably above |Y_MIN| so PC-relative targets
#: (rendered as absolute addresses) never wrap below zero.
ROUND_TRIP_PC = 0x0010_0000


def _imm13(rng: random.Random) -> int:
    """A 13-bit signed immediate, biased toward the boundary values."""
    if rng.random() < 0.25:
        return rng.choice((S2_MIN, -1, 0, 1, S2_MAX))
    return rng.randint(S2_MIN, S2_MAX)


def _imm19(rng: random.Random) -> int:
    """A 19-bit signed immediate, biased toward the boundary values."""
    if rng.random() < 0.25:
        return rng.choice((Y_MIN, -4, 0, 4, Y_MAX))
    return rng.randint(Y_MIN, Y_MAX)


def random_instruction(rng: random.Random, opcode: Opcode) -> Instruction:
    """One canonical random instruction for ``opcode``."""
    info = opcode_info(opcode)

    if info.format is Format.LONG:
        if opcode in _COND_OPS:
            dest = rng.randrange(16)  # the condition nibble; bit 4 unused
        else:
            dest = rng.randrange(32)
        return Instruction.long(opcode, dest=dest, y=_imm19(rng))

    if opcode in _DEST_ONLY_OPS:
        return Instruction.short(opcode, dest=rng.randrange(32))

    imm = rng.random() < 0.6
    s2 = _imm13(rng) if imm else rng.randrange(32)
    rs1 = rng.randrange(32)
    if opcode in _RET_OPS:
        return Instruction.short(opcode, dest=0, rs1=rs1, s2=s2, imm=imm)
    if opcode in _COND_OPS:
        return Instruction.short(opcode, dest=rng.randrange(16), rs1=rs1, s2=s2, imm=imm)
    scc = info.may_set_cc and rng.random() < 0.5
    return Instruction.short(
        opcode, dest=rng.randrange(32), rs1=rs1, s2=s2, imm=imm, scc=scc
    )


def iter_instructions(
    seed: int, per_opcode: int = 8, opcodes: tuple[Opcode, ...] = ALL_OPCODES
) -> Iterator[Instruction]:
    """Deterministic stream: ``per_opcode`` canonical samples of every opcode."""
    rng = random.Random(seed)
    for opcode in opcodes:
        for _ in range(per_opcode):
            yield random_instruction(rng, opcode)


def arith_opcodes() -> tuple[Opcode, ...]:
    """The 12 ALU opcodes (the ones whose SCC bit is meaningful)."""
    return tuple(
        info.opcode
        for op in ALL_OPCODES
        if (info := opcode_info(op)).category is Category.ARITH
    )
