"""Seeded, grammar-based random mini-C program generator.

The grammar covers exactly the subset RCC compiles — int scalars, int and
char arrays, pointers into arrays, functions with recursion (at most
:data:`MAX_ARGS` parameters, the register-window convention), ``if`` /
``for`` / ``while`` / ``do-while`` / ``break`` / ``continue`` / ``return``,
the full C operator set, globals with constant initializers, and the
``putchar`` / ``putint`` / ``puts`` console builtins — and is weighted
toward the patterns the engines disagree on first: deep call chains
(register-window overflow/underflow), branches packed next to calls and
returns (delayed-jump slot fills), and dense mixed-width store/load
traffic (the fast engines' code-write invalidation neighbourhood).

Every generated program is **well-defined on all five oracles** by
construction, so any cross-oracle difference is a bug, never UB:

* every scalar is initialized at its declaration; arrays are either
  globals (zero-filled ``.space``) or zero-initialized in a fixed,
  non-minimizable prologue;
* array and pointer indices are masked with ``& (ARRAY_SIZE - 1)``;
* divisors carry ``| 1`` so division/modulo by zero cannot happen
  (the oracles' div-by-zero behaviours legitimately differ);
* loop counters live in a reserved namespace no other statement writes,
  and ``while``/``do`` counters step in a non-removable block tail, so
  every loop terminates — even after the minimizer chews on the body;
* ``continue`` appears only in ``for`` loops (whose step clause always
  runs), never where it could skip a counter update;
* recursion is fenced by a leading depth parameter: self-calls pass
  ``d - 1`` under an ``if (d > 0)`` guard.

Determinism contract: ``generate_source(seed, profile)`` is a pure
function of its arguments (a private ``random.Random(seed)`` stream, no
ambient state), so one seed names one program, byte for byte, forever.
Widening the grammar later must preserve old streams or bump the profile
name — the corpus and the farm cache keys both hang off this.
"""

from __future__ import annotations

import dataclasses
import random

#: All fuzz arrays share one size so one mask keeps every access in bounds.
ARRAY_SIZE = 16
ARRAY_MASK = ARRAY_SIZE - 1

#: Mirrors ``repro.cc.riscgen.MAX_ARGS`` (the r26..r30 window convention).
MAX_ARGS = 5

_BIN_OPS = ("+", "-", "*", "&", "|", "^")
_CMP_OPS = ("==", "!=", "<", "<=", ">", ">=")
_COMPOUND_OPS = ("+=", "-=", "^=", "&=", "|=", "*=", "<<=", ">>=")


@dataclasses.dataclass(frozen=True)
class GenConfig:
    """Tunable shape of one generation profile (all draws stay seeded)."""

    min_helpers: int = 1
    max_helpers: int = 3
    min_stmts: int = 5
    max_stmts: int = 12
    helper_max_stmts: int = 8
    max_block_depth: int = 2
    max_expr_depth: int = 3
    max_recursion_depth: int = 12
    max_loop_iters: int = 12
    inner_loop_iters: int = 6
    max_call_exprs: int = 2


#: Named profiles; the farm job encodes the profile by name so cache keys
#: and replay commands stay human-readable.
PROFILES: dict[str, GenConfig] = {
    "default": GenConfig(),
    "small": GenConfig(
        max_helpers=2,
        max_stmts=8,
        helper_max_stmts=6,
        max_recursion_depth=8,
        max_loop_iters=8,
        inner_loop_iters=4,
    ),
    "deep-calls": GenConfig(
        min_helpers=3,
        max_helpers=4,
        max_recursion_depth=16,
        max_stmts=10,
    ),
}

DEFAULT_PROFILE = "default"


# -- program shape -------------------------------------------------------------------


class Stmt:
    """One generated statement; knows how to render and expose child lists."""

    def render(self, indent: int) -> list[str]:
        raise NotImplementedError

    def child_lists(self) -> list[list["Stmt"]]:
        return []


@dataclasses.dataclass
class LeafStmt(Stmt):
    text: str

    def render(self, indent: int) -> list[str]:
        pad = "    " * indent
        return [pad + line for line in self.text.split("\n")]


@dataclasses.dataclass
class BlockStmt(Stmt):
    """A braced construct: ``head { body... body_tail } else { else_body... }``.

    ``body_tail`` holds loop-counter steps the minimizer must never drop
    (termination depends on them); ``close`` carries ``do``/``while``
    trailers.
    """

    head: str
    body: list[Stmt]
    body_tail: str = ""
    close: str = "}"
    else_body: list[Stmt] | None = None

    def render(self, indent: int) -> list[str]:
        pad = "    " * indent
        lines = [pad + line for line in self.head.split("\n")]
        for stmt in self.body:
            lines.extend(stmt.render(indent + 1))
        if self.body_tail:
            lines.extend("    " * (indent + 1) + t for t in self.body_tail.split("\n"))
        if self.else_body is None:
            lines.extend(pad + line for line in self.close.split("\n"))
        else:
            lines.append(pad + "} else {")
            for stmt in self.else_body:
                lines.extend(stmt.render(indent + 1))
            lines.append(pad + "}")
        return lines

    def child_lists(self) -> list[list[Stmt]]:
        lists = [self.body]
        if self.else_body is not None:
            lists.append(self.else_body)
        return lists


@dataclasses.dataclass
class FuzzFunction:
    name: str
    params: list[str]  # rendered parameter declarations
    prologue: list[str]  # declarations + fixed init code; not minimizable
    body: list[Stmt]
    epilogue: list[str]  # final return (and main's checksum print)

    def render(self) -> list[str]:
        lines = [f"int {self.name}({', '.join(self.params) or 'void'}) {{"]
        lines.extend("    " + line for line in self.prologue)
        for stmt in self.body:
            lines.extend(stmt.render(1))
        lines.extend("    " + line for line in self.epilogue)
        lines.append("}")
        return lines


@dataclasses.dataclass
class FuzzProgram:
    """A generated program: renderable, and minimizable statement-by-statement."""

    seed: int
    profile: str
    globals: list[str]
    functions: list[FuzzFunction]

    def render(self) -> str:
        lines = [
            f"/* repro.fuzz seed={self.seed} profile={self.profile} */",
        ]
        lines.extend(self.globals)
        lines.append("")
        protos = [
            f"int {fn.name}({', '.join(fn.params) or 'void'});"
            for fn in self.functions
            if fn.name != "main"
        ]
        lines.extend(protos)
        if protos:
            lines.append("")
        for fn in self.functions:
            lines.extend(fn.render())
            lines.append("")
        return "\n".join(lines)

    def statement_lists(self) -> list[list[Stmt]]:
        """Every minimizable statement list, outermost first."""
        lists: list[list[Stmt]] = []

        def walk(stmts: list[Stmt]) -> None:
            lists.append(stmts)
            for stmt in stmts:
                for child in stmt.child_lists():
                    walk(child)

        for fn in self.functions:
            walk(fn.body)
        return lists


@dataclasses.dataclass(frozen=True)
class _FuncSig:
    """What a call site must know about a helper."""

    name: str
    extra_ints: int  # int parameters after the depth parameter
    takes_pointer: bool


# -- the generator -------------------------------------------------------------------


class _FunctionScope:
    """Names visible while generating one function's body."""

    def __init__(
        self,
        scalars: list[str],
        int_arrays: list[str],
        char_arrays: list[str],
        pointers: list[str],
        counters: list[str],
        depth_param: str | None,
        callees: list[_FuncSig],
        recursive_sig: _FuncSig | None,
    ):
        self.scalars = scalars  # readable and writable int scalars
        self.int_arrays = int_arrays
        self.char_arrays = char_arrays
        self.pointers = pointers
        self.counters = counters  # readable only
        self.depth_param = depth_param
        self.callees = callees
        self.recursive_sig = recursive_sig
        self.call_exprs_left = 0
        self.loop_depth = 0
        # innermost-first loop kinds; `continue` is legal only when the
        # innermost loop is a `for` (its step clause still runs) — in a
        # `while`/`do` it would skip the counter tail and never terminate
        self.loop_stack: list[str] = []
        self.small_loops = False


class ProgramGenerator:
    def __init__(self, seed: int, profile: str = DEFAULT_PROFILE):
        if profile not in PROFILES:
            raise ValueError(
                f"unknown fuzz profile {profile!r} (choose from: {', '.join(sorted(PROFILES))})"
            )
        self.seed = seed
        self.profile = profile
        self.config = PROFILES[profile]
        self.rng = random.Random(seed)
        self.global_scalars: list[str] = []
        self.global_int_arrays: list[str] = []
        self.global_char_arrays: list[str] = []

    # -- top level ---------------------------------------------------------------

    def generate(self) -> FuzzProgram:
        rng = self.rng
        cfg = self.config
        globals_lines = self._gen_globals()
        sigs: list[_FuncSig] = []
        functions: list[FuzzFunction] = []
        n_helpers = rng.randint(cfg.min_helpers, cfg.max_helpers)
        for index in range(1, n_helpers + 1):
            sig, fn = self._gen_helper(index, list(sigs))
            sigs.append(sig)
            functions.append(fn)
        functions.append(self._gen_main(sigs))
        return FuzzProgram(self.seed, self.profile, globals_lines, functions)

    def _gen_globals(self) -> list[str]:
        rng = self.rng
        lines = []
        for i in range(rng.randint(2, 4)):
            name = f"g{i}"
            self.global_scalars.append(name)
            lines.append(f"int {name} = {rng.randint(-9999, 9999)};")
        for i in range(rng.randint(1, 2)):
            name = f"ga{i}"
            self.global_int_arrays.append(name)
            lines.append(f"int {name}[{ARRAY_SIZE}];")
        if rng.random() < 0.5:
            self.global_char_arrays.append("gc0")
            lines.append(f"char gc0[{ARRAY_SIZE}];")
        return lines

    def _gen_helper(self, index: int, callees: list[_FuncSig]) -> tuple[_FuncSig, FuzzFunction]:
        rng = self.rng
        cfg = self.config
        name = f"f{index}"
        extra_ints = rng.randint(1, 3)
        takes_pointer = bool(self.global_int_arrays) and rng.random() < 0.4
        sig = _FuncSig(name, extra_ints, takes_pointer)
        recursive = rng.random() < 0.6

        params = ["int d"] + [f"int a{i}" for i in range(extra_ints)]
        pointers = []
        if takes_pointer:
            params.append("int *ap")
            pointers.append("ap")
        scalars = [f"a{i}" for i in range(extra_ints)] + list(self.global_scalars)

        scope = _FunctionScope(
            scalars=scalars,
            int_arrays=list(self.global_int_arrays),
            char_arrays=list(self.global_char_arrays),
            pointers=pointers,
            counters=[],
            depth_param="d",
            callees=callees,
            recursive_sig=sig if recursive else None,
        )
        scope.small_loops = recursive
        prologue, locals_, counters = self._gen_locals(scope, want_array=rng.random() < 0.3)
        scope.scalars = locals_ + scope.scalars
        scope.counters = counters
        scope.call_exprs_left = cfg.max_call_exprs

        body = self._gen_stmt_list(scope, rng.randint(3, cfg.helper_max_stmts), depth=0)
        if recursive:
            # guarantee at least one guarded self-call site
            body.insert(
                rng.randrange(len(body) + 1),
                self._recursion_stmt(scope),
            )
        epilogue = [f"return {self._expr(scope, 1)};"]
        return sig, FuzzFunction(name, params, prologue, body, epilogue)

    def _gen_main(self, sigs: list[_FuncSig]) -> FuzzFunction:
        rng = self.rng
        cfg = self.config
        scope = _FunctionScope(
            scalars=list(self.global_scalars),
            int_arrays=list(self.global_int_arrays),
            char_arrays=list(self.global_char_arrays),
            pointers=[],
            counters=[],
            depth_param=None,
            callees=list(sigs),
            recursive_sig=None,
        )
        prologue, locals_, counters = self._gen_locals(
            scope, want_array=rng.random() < 0.4, want_pointer=True
        )
        scope.scalars = locals_ + scope.scalars
        scope.counters = counters
        scope.call_exprs_left = cfg.max_call_exprs

        body = self._gen_stmt_list(scope, rng.randint(cfg.min_stmts, cfg.max_stmts), depth=0)
        # every program exercises its call graph at least once
        if sigs:
            target = locals_[0] if locals_ else None
            for sig in rng.sample(sigs, k=min(len(sigs), rng.randint(1, 2))):
                call = self._call_text(scope, sig, deep=True)
                text = f"{target} += {call};" if target else f"{call};"
                body.insert(rng.randrange(len(body) + 1), LeafStmt(text))
        checksum = " ^ ".join(locals_[:2]) if len(locals_) >= 2 else (locals_ or ["g0"])[0]
        epilogue = [f"putint({checksum});", f"return {checksum};"]
        return FuzzFunction("main", [], prologue, body, epilogue)

    def _gen_locals(
        self, scope: _FunctionScope, want_array: bool = False, want_pointer: bool = False
    ) -> tuple[list[str], list[str], list[str]]:
        """Declarations + fixed init code; returns (lines, scalars, counters)."""
        rng = self.rng
        cfg = self.config
        lines: list[str] = []
        locals_: list[str] = []
        for i in range(rng.randint(2, 4)):
            name = f"v{i}"
            locals_.append(name)
            init = self._expr(
                scope if not locals_[:-1] else self._with_scalars(scope, locals_[:-1]), 1
            )
            lines.append(f"int {name} = {init};")
        counters = [f"i{k}" for k in range(cfg.max_block_depth + 1)]
        lines.extend(f"int {c} = 0;" for c in counters)
        if want_array:
            lines.append(f"int la[{ARRAY_SIZE}];")
            scope.int_arrays.insert(0, "la")
            fill = rng.randint(-99, 99)
            lines.append(
                f"for ({counters[0]} = 0; {counters[0]} < {ARRAY_SIZE}; "
                f"{counters[0]}++) {{ la[{counters[0]}] = {fill} + {counters[0]}; }}"
            )
        if want_pointer and scope.int_arrays and rng.random() < 0.6:
            base = rng.choice(scope.int_arrays)
            lines.append(f"int *p0 = {base};")
            scope.pointers.append("p0")
        return lines, locals_, counters

    @staticmethod
    def _with_scalars(scope: _FunctionScope, extra: list[str]) -> _FunctionScope:
        clone = _FunctionScope(
            scalars=extra + scope.scalars,
            int_arrays=scope.int_arrays,
            char_arrays=scope.char_arrays,
            pointers=scope.pointers,
            counters=scope.counters,
            depth_param=scope.depth_param,
            callees=scope.callees,
            recursive_sig=scope.recursive_sig,
        )
        clone.call_exprs_left = scope.call_exprs_left
        return clone

    # -- statements ----------------------------------------------------------------

    def _gen_stmt_list(self, scope: _FunctionScope, count: int, depth: int) -> list[Stmt]:
        return [self._gen_stmt(scope, depth) for _ in range(count)]

    def _gen_stmt(self, scope: _FunctionScope, depth: int) -> Stmt:
        rng = self.rng
        cfg = self.config
        choices: list[tuple[float, str]] = [
            (0.22, "assign"),
            (0.08, "compound"),
            (0.05, "incdec"),
            (0.12, "array_store"),
            (0.06, "output"),
        ]
        if scope.char_arrays:
            choices.append((0.05, "char_store"))
        if scope.pointers:
            choices.append((0.05, "ptr_store"))
        # calls live outside loops only: a call under two 12-iteration loops
        # multiplies the callee's whole call tree and the step budget explodes
        if scope.loop_depth == 0 and scope.call_exprs_left > 0 and scope.callees:
            choices.append((0.08, "call"))
        if depth < cfg.max_block_depth:
            choices.extend(
                [(0.16, "if"), (0.07, "ifelse"), (0.13, "for"), (0.06, "while"), (0.04, "dowhile")]
            )
        if scope.loop_depth:
            choices.append((0.03, "break"))
        if scope.loop_stack and scope.loop_stack[-1] == "for":
            choices.append((0.02, "continue"))
        choices.append((0.02, "return"))

        total = sum(w for w, _ in choices)
        pick = rng.random() * total
        kind = choices[-1][1]
        for weight, name in choices:
            pick -= weight
            if pick <= 0:
                kind = name
                break
        return getattr(self, f"_stmt_{kind}")(scope, depth)

    def _stmt_assign(self, scope: _FunctionScope, depth: int) -> Stmt:
        target = self.rng.choice(scope.scalars)
        return LeafStmt(f"{target} = {self._expr(scope, self.config.max_expr_depth)};")

    def _stmt_compound(self, scope: _FunctionScope, depth: int) -> Stmt:
        target = self.rng.choice(scope.scalars)
        op = self.rng.choice(_COMPOUND_OPS)
        if op in ("<<=", ">>="):
            return LeafStmt(f"{target} {op} {self.rng.randint(0, 31)};")
        return LeafStmt(f"{target} {op} {self._expr(scope, 2)};")

    def _stmt_incdec(self, scope: _FunctionScope, depth: int) -> Stmt:
        target = self.rng.choice(scope.scalars)
        op = self.rng.choice(["++", "--"])
        if self.rng.random() < 0.5:
            return LeafStmt(f"{target}{op};")
        return LeafStmt(f"{op}{target};")

    def _stmt_array_store(self, scope: _FunctionScope, depth: int) -> Stmt:
        if not scope.int_arrays:
            return self._stmt_assign(scope, depth)
        array = self.rng.choice(scope.int_arrays)
        index = self._index(scope)
        return LeafStmt(f"{array}[{index}] = {self._expr(scope, 2)};")

    def _stmt_char_store(self, scope: _FunctionScope, depth: int) -> Stmt:
        array = self.rng.choice(scope.char_arrays)
        return LeafStmt(f"{array}[{self._index(scope)}] = {self._expr(scope, 2)};")

    def _stmt_ptr_store(self, scope: _FunctionScope, depth: int) -> Stmt:
        pointer = self.rng.choice(scope.pointers)
        if self.rng.random() < 0.5:
            return LeafStmt(f"{pointer}[{self._index(scope)}] = {self._expr(scope, 2)};")
        return LeafStmt(f"*({pointer} + ({self._index(scope)})) = {self._expr(scope, 2)};")

    def _stmt_output(self, scope: _FunctionScope, depth: int) -> Stmt:
        roll = self.rng.random()
        if roll < 0.5:
            return LeafStmt(f"putint({self._expr(scope, 2)});")
        if roll < 0.85:
            return LeafStmt(f"putchar(32 + (({self._expr(scope, 2)}) & 63));")
        text = "".join(self.rng.choice("abcdefghkmnpqrstuvwxyz") for _ in range(self.rng.randint(2, 6)))
        return LeafStmt(f'puts("{text}");')

    def _stmt_call(self, scope: _FunctionScope, depth: int) -> Stmt:
        scope.call_exprs_left -= 1
        sig = self.rng.choice(scope.callees)
        call = self._call_text(scope, sig)
        if scope.scalars and self.rng.random() < 0.7:
            return LeafStmt(f"{self.rng.choice(scope.scalars)} = {call};")
        return LeafStmt(f"{call};")

    def _recursion_stmt(self, scope: _FunctionScope) -> Stmt:
        # exactly one self-call site per function (inserted after body
        # generation): N sites would mean N^depth invocations
        sig = scope.recursive_sig
        assert sig is not None and scope.depth_param is not None
        args = [f"{scope.depth_param} - 1"]
        args += [self._expr(scope, 1) for _ in range(sig.extra_ints)]
        if sig.takes_pointer:
            args.append(self._pointer_arg(scope))
        target = self.rng.choice(scope.scalars)
        call = f"{sig.name}({', '.join(args)})"
        return BlockStmt(
            head=f"if ({scope.depth_param} > 0) {{",
            body=[LeafStmt(f"{target} = {target} + {call};")],
        )

    def _stmt_if(self, scope: _FunctionScope, depth: int) -> Stmt:
        cond = self._cond(scope)
        body = self._gen_stmt_list(scope, self.rng.randint(1, 3), depth + 1)
        return BlockStmt(head=f"if ({cond}) {{", body=body)

    def _stmt_ifelse(self, scope: _FunctionScope, depth: int) -> Stmt:
        cond = self._cond(scope)
        body = self._gen_stmt_list(scope, self.rng.randint(1, 2), depth + 1)
        els = self._gen_stmt_list(scope, self.rng.randint(1, 2), depth + 1)
        return BlockStmt(head=f"if ({cond}) {{", body=body, else_body=els)

    def _loop_bounds(self, scope: _FunctionScope, depth: int) -> int:
        cfg = self.config
        limit = cfg.max_loop_iters if depth <= 1 else cfg.inner_loop_iters
        if scope.small_loops:
            # recursive bodies run once per recursion level: keep their
            # loops short so level_cost x depth stays inside the step budget
            limit = min(limit, cfg.inner_loop_iters)
        return self.rng.randint(2, limit)

    def _stmt_for(self, scope: _FunctionScope, depth: int) -> Stmt:
        counter = scope.counters[depth]
        bound = self._loop_bounds(scope, depth + 1)
        step = self.rng.choice(["++", " += 2"])
        scope.loop_depth += 1
        scope.loop_stack.append("for")
        body = self._gen_stmt_list(scope, self.rng.randint(1, 3), depth + 1)
        scope.loop_stack.pop()
        scope.loop_depth -= 1
        head = f"for ({counter} = 0; {counter} < {bound}; {counter}{step}) {{"
        return BlockStmt(head=head, body=body)

    def _stmt_while(self, scope: _FunctionScope, depth: int) -> Stmt:
        counter = scope.counters[depth]
        bound = self._loop_bounds(scope, depth + 1)
        scope.loop_depth += 1
        scope.loop_stack.append("while")
        body = self._gen_stmt_list(scope, self.rng.randint(1, 3), depth + 1)
        scope.loop_stack.pop()
        scope.loop_depth -= 1
        return BlockStmt(
            head=f"{counter} = 0;\nwhile ({counter} < {bound}) {{",
            body=body,
            body_tail=f"{counter}++;",
        )

    def _stmt_dowhile(self, scope: _FunctionScope, depth: int) -> Stmt:
        counter = scope.counters[depth]
        bound = self._loop_bounds(scope, depth + 1)
        scope.loop_depth += 1
        scope.loop_stack.append("do")
        body = self._gen_stmt_list(scope, self.rng.randint(1, 2), depth + 1)
        scope.loop_stack.pop()
        scope.loop_depth -= 1
        return BlockStmt(
            head=f"{counter} = 0;\ndo {{",
            body=body,
            body_tail=f"{counter}++;",
            close=f"}} while ({counter} < {bound});",
        )

    def _stmt_break(self, scope: _FunctionScope, depth: int) -> Stmt:
        return LeafStmt("break;")

    def _stmt_continue(self, scope: _FunctionScope, depth: int) -> Stmt:
        return LeafStmt("continue;")

    def _stmt_return(self, scope: _FunctionScope, depth: int) -> Stmt:
        return LeafStmt(f"return {self._expr(scope, 1)};")

    # -- expressions -----------------------------------------------------------------

    def _call_text(self, scope: _FunctionScope, sig: _FuncSig, deep: bool = False) -> str:
        rng = self.rng
        if deep:
            # main's top-level calls drive the deep chains that overflow and
            # refill the register-window stack
            depth_arg = str(rng.randint(self.config.max_recursion_depth // 2, self.config.max_recursion_depth))
        elif scope.depth_param is not None and rng.random() < 0.5:
            depth_arg = f"{scope.depth_param} - 1"
        else:
            depth_arg = str(rng.randint(0, 2))
        args = [depth_arg]
        args += [self._expr(scope, 1) for _ in range(sig.extra_ints)]
        if sig.takes_pointer:
            args.append(self._pointer_arg(scope))
        return f"{sig.name}({', '.join(args)})"

    def _pointer_arg(self, scope: _FunctionScope) -> str:
        pool = self.global_int_arrays + scope.pointers
        return self.rng.choice(pool) if pool else self.global_int_arrays[0]

    def _index(self, scope: _FunctionScope) -> str:
        """An always-in-bounds array index expression."""
        rng = self.rng
        roll = rng.random()
        if roll < 0.4:
            return str(rng.randint(0, ARRAY_MASK))
        if roll < 0.7 and scope.counters:
            return f"{rng.choice(scope.counters + scope.scalars)} & {ARRAY_MASK}"
        return f"({self._expr(scope, 1)}) & {ARRAY_MASK}"

    def _cond(self, scope: _FunctionScope) -> str:
        rng = self.rng
        roll = rng.random()
        a = self._expr(scope, 1)
        if roll < 0.55:
            return f"{a} {rng.choice(_CMP_OPS)} {self._expr(scope, 1)}"
        if roll < 0.75:
            b = f"{self._expr(scope, 1)} {rng.choice(_CMP_OPS)} {self._expr(scope, 1)}"
            op = rng.choice(["&&", "||"])
            return f"{a} {rng.choice(_CMP_OPS)} 0 {op} {b}"
        if roll < 0.9:
            return f"!({a})"
        return a

    def _expr(self, scope: _FunctionScope, depth: int) -> str:
        rng = self.rng
        if depth <= 0 or rng.random() < 0.2:
            return self._atom(scope)
        roll = rng.random()
        if roll < 0.5:
            op = rng.choice(_BIN_OPS)
            return f"({self._expr(scope, depth - 1)} {op} {self._expr(scope, depth - 1)})"
        if roll < 0.6:
            op = rng.choice(["<<", ">>"])
            count = self._shift_count(scope)
            return f"({self._expr(scope, depth - 1)} {op} {count})"
        if roll < 0.7:
            op = rng.choice(["/", "%"])
            return f"({self._expr(scope, depth - 1)} {op} (({self._expr(scope, depth - 1)}) | 1))"
        if roll < 0.8:
            op = rng.choice(["-", "~", "!"])
            return f"{op}({self._expr(scope, depth - 1)})"
        if roll < 0.88:
            return f"({self._expr(scope, depth - 1)} {rng.choice(_CMP_OPS)} {self._expr(scope, depth - 1)})"
        if roll < 0.94 and scope.call_exprs_left > 0 and scope.callees and scope.loop_depth == 0:
            scope.call_exprs_left -= 1
            return self._call_text(scope, rng.choice(scope.callees))
        return self._atom(scope)

    def _shift_count(self, scope: _FunctionScope) -> str:
        rng = self.rng
        roll = rng.random()
        if roll < 0.7:
            return str(rng.randint(0, 31))
        if roll < 0.9:
            return f"(({self._atom(scope)}) & 31)"
        # raw count: the ISA, the VAX and the IR interpreter must agree on
        # out-of-range shift masking — leave it unmasked to prove they do
        return f"({self._atom(scope)})"

    def _atom(self, scope: _FunctionScope) -> str:
        rng = self.rng
        roll = rng.random()
        if roll < 0.38 and scope.scalars:
            return rng.choice(scope.scalars)
        if roll < 0.5:
            return str(rng.randint(-64, 63))
        if roll < 0.58:
            return str(rng.randint(-2147483647, 2147483647))
        if roll < 0.72 and scope.int_arrays:
            return f"{rng.choice(scope.int_arrays)}[{self._index(scope)}]"
        if roll < 0.78 and scope.char_arrays:
            return f"{rng.choice(scope.char_arrays)}[{self._index(scope)}]"
        if roll < 0.86 and scope.pointers:
            pointer = rng.choice(scope.pointers)
            return f"(*({pointer} + ({self._index(scope)})))"
        if roll < 0.92 and scope.depth_param is not None:
            return scope.depth_param
        if roll < 0.96 and scope.counters:
            return rng.choice(scope.counters)
        return str(rng.randint(-9, 9))


# -- public API ----------------------------------------------------------------------


def generate_program(seed: int, profile: str = DEFAULT_PROFILE) -> FuzzProgram:
    """The seed's program, as a minimizable statement tree."""
    return ProgramGenerator(seed, profile).generate()


def generate_source(seed: int, profile: str = DEFAULT_PROFILE) -> str:
    """The seed's program, rendered to mini-C (byte-stable per seed)."""
    return generate_program(seed, profile).render()
