"""``python -m repro.fuzz`` — the differential-fuzzing CLI.

Subcommands:

* ``run`` — a seed-range campaign through the farm pool; divergences are
  minimized, written to the corpus directory and filed in the run ledger.
  Exit status 0 only when every seed cross-checked clean.
* ``replay SEED`` — regenerate one seed (byte-identical, forever) and
  cross-check it; ``--show`` prints the program instead.
* ``minimize SEED`` — shrink a divergent seed to its minimal repro.
* ``triage`` — human summary of a saved campaign report, grouped by
  divergence signature.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.fuzz.crosscheck import DEFAULT_MAX_STEPS, crosscheck_seed, crosscheck_source
from repro.fuzz.gen import DEFAULT_PROFILE, PROFILES, generate_source
from repro.fuzz.minimize import MinimizeError, minimize_seed, minimize_source


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--profile", default=DEFAULT_PROFILE, choices=sorted(PROFILES),
        help="generator profile (default: %(default)s)",
    )
    parser.add_argument(
        "--max-steps", type=int, default=DEFAULT_MAX_STEPS,
        help="per-oracle step budget (default: %(default)s)",
    )


def _cmd_run(args) -> int:
    from repro.fuzz.campaign import run_campaign, save_report

    seeds = range(args.start, args.start + args.count)

    def progress(done: int, total: int, divergent: int) -> None:
        if done % args.progress_every == 0 or done == total:
            print(f"  {done}/{total} checked, {divergent} divergent", file=sys.stderr)

    report = run_campaign(
        seeds,
        args.profile,
        max_steps=args.max_steps,
        serial=args.serial,
        minimize=not args.no_minimize,
        corpus_dir=args.corpus,
        ledger=False if args.no_ledger else None,
        progress=progress if args.progress_every else None,
    )
    print(report.render())
    if args.report:
        save_report(report, args.report)
        print(f"report written to {args.report}")
    return 0 if report.clean else 1


def _cmd_replay(args) -> int:
    if args.show:
        print(generate_source(args.seed, args.profile))
        return 0
    report = crosscheck_seed(args.seed, args.profile, max_steps=args.max_steps)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.render())
    return {"ok": 0, "divergent": 1}.get(report.status, 2)


def _cmd_minimize(args) -> int:
    try:
        if args.source:
            source = Path(args.source).read_text(encoding="utf-8")
            minimized, report, tests = minimize_source(
                source, max_steps=args.max_steps
            )
        else:
            minimized, report, tests = minimize_seed(
                args.seed, args.profile, max_steps=args.max_steps
            )
    except MinimizeError as exc:
        print(f"minimize: {exc}", file=sys.stderr)
        return 2
    print(f"// minimized after {tests} cross-checks; status: {report.status}")
    for div in report.divergences:
        print("// " + div.render().replace("\n", "\n// "))
    print(minimized)
    if args.out:
        Path(args.out).write_text(minimized + "\n", encoding="utf-8")
        print(f"// written to {args.out}")
    return 0


def _cmd_triage(args) -> int:
    from repro.fuzz.campaign import triage_text

    payload = json.loads(Path(args.report).read_text(encoding="utf-8"))
    print(triage_text(payload))
    return 0 if not payload.get("divergences") and not payload.get("compile_errors") else 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fuzz",
        description="differential fuzzing of the RISC I / VAX toolchain and engines",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="run a seed-range campaign through the farm")
    p_run.add_argument("--start", type=int, default=0, help="first seed (default 0)")
    p_run.add_argument("--count", type=int, default=1000, help="number of seeds")
    p_run.add_argument("--serial", action="store_true", help="run in-process (no farm pool)")
    p_run.add_argument("--no-minimize", action="store_true", help="skip delta-debugging divergences")
    p_run.add_argument("--no-ledger", action="store_true", help="do not file divergences in the run ledger")
    p_run.add_argument("--corpus", default=None, help="directory for minimized repros (e.g. tests/fuzz_corpus)")
    p_run.add_argument("--report", default=None, help="write the JSON campaign report here")
    p_run.add_argument("--progress-every", type=int, default=500, metavar="N",
                       help="progress line every N seeds to stderr (0 = quiet)")
    _add_common(p_run)
    p_run.set_defaults(func=_cmd_run)

    p_replay = sub.add_parser("replay", help="cross-check one seed (byte-reproducible)")
    p_replay.add_argument("seed", type=int)
    p_replay.add_argument("--show", action="store_true", help="print the generated program only")
    p_replay.add_argument("--json", action="store_true", help="emit the full report as JSON")
    _add_common(p_replay)
    p_replay.set_defaults(func=_cmd_replay)

    p_min = sub.add_parser("minimize", help="shrink a divergent program to a minimal repro")
    p_min.add_argument("seed", type=int, nargs="?", help="campaign seed to minimize")
    p_min.add_argument("--source", default=None, help="minimize a .c file instead of a seed")
    p_min.add_argument("--out", default=None, help="also write the minimized program here")
    _add_common(p_min)
    p_min.set_defaults(func=_cmd_minimize)

    p_triage = sub.add_parser("triage", help="summarize a saved campaign report")
    p_triage.add_argument("report", help="path to a JSON report from `run --report`")
    p_triage.set_defaults(func=_cmd_triage)

    args = parser.parse_args(argv)
    if args.command == "minimize" and args.seed is None and not args.source:
        parser.error("minimize needs a SEED or --source FILE")
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
