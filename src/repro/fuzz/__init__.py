"""Differential fuzzing of the RISC I / VAX toolchain and engines.

The fuzzer closes the loop ROADMAP open item 4 asks for: a standing
correctness army of random mini-C programs, each cross-checked across
every execution oracle the repo has —

* RISC I reference interpreter vs :class:`PredecodedEngine` (bit-identical
  contract: exit code, console, full architectural stats),
* VAX with the per-PC decode cache off vs on (same contract),
* RISC I vs VAX vs the IR interpreter (semantic contract: exit code and
  console output; the machines legitimately differ in stats).

Modules:

* :mod:`repro.fuzz.gen` — seeded, grammar-based program generator over
  exactly the subset RCC compiles (same seed, same bytes — forever).
* :mod:`repro.fuzz.instructions` — seeded RISC I instruction generator
  driving the encode/decode/disassemble/assemble round-trip tests.
* :mod:`repro.fuzz.crosscheck` — compile once per target, run all five
  oracles, report every divergence.
* :mod:`repro.fuzz.minimize` — statement-level delta debugging that
  shrinks a divergent program to a minimal repro for ``tests/fuzz_corpus/``.
* :mod:`repro.fuzz.campaign` — fan a seed range out through the farm
  pool, collect a deterministic triage report, file every divergence as
  a run-ledger diff artifact.
* ``python -m repro.fuzz run|replay|minimize|triage`` — the CLI.
"""

from repro.fuzz.crosscheck import CrossCheckReport, Divergence, crosscheck_seed, crosscheck_source
from repro.fuzz.gen import DEFAULT_PROFILE, GenConfig, PROFILES, generate_program, generate_source
from repro.fuzz.instructions import iter_instructions, random_instruction
from repro.fuzz.minimize import minimize_source

__all__ = [
    "CrossCheckReport",
    "DEFAULT_PROFILE",
    "Divergence",
    "GenConfig",
    "PROFILES",
    "crosscheck_seed",
    "crosscheck_source",
    "generate_program",
    "generate_source",
    "iter_instructions",
    "minimize_source",
    "random_instruction",
]
