"""Baseline machines the paper compares RISC I against.

* :mod:`repro.baselines.vax` — a full (simplified) VAX-class microcoded
  CISC machine: variable-length instructions, operand specifiers with rich
  addressing modes, CALLS/RET stack frames, and a cycle cost model.
* :mod:`repro.baselines.estimators` — table-driven code-size and cycle
  models for the Motorola 68000 and Zilog Z8002, applied to compiler IR.
* :mod:`repro.baselines.conventional` — the "RISC I without register
  windows" strawman used by the window ablation (experiment E11).
"""
