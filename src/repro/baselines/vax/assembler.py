"""Two-pass assembler for the VAX-like baseline.

Operand syntax (a subset of VAX MACRO):

=================  ==========================================
``#42`` / ``#sym``  short literal (0..63) or full immediate
``r3 sp fp ap``     register
``(r3)``            register deferred
``-(sp)``           autodecrement push
``(r3)+``           autoincrement
``8(fp)``           displacement (8/16/32-bit chosen by value)
``@#sym``           absolute address
``sym``             absolute (address operands) or 16-bit
                    relative displacement (branch operands)
=================  ==========================================

Directives: ``.text .data .entry .long .word .byte .space .ascii .asciiz
.align .equ .global``.  ``.entry mask`` emits the 2-byte register-save
mask that CALLS reads at the procedure entry point.
"""

from __future__ import annotations

import dataclasses
import re

from repro.baselines.vax.isa import INSTRUCTIONS, Mode, REGISTER_NAMES, OperandSpec
from repro.core.program import DEFAULT_CODE_BASE, Program, Segment


class VaxAssemblerError(Exception):
    def __init__(self, message: str, line: int | None = None):
        self.line = line
        super().__init__(f"line {line}: {message}" if line else message)


_LABEL_RE = re.compile(r"^([A-Za-z_.$][\w.$]*):")
_REG_TEXT = r"(?:r\d{1,2}|sp|fp|ap|pc)"
_DISP_RE = re.compile(rf"^(-?\w+)\(({_REG_TEXT})\)$", re.IGNORECASE)
_DEFERRED_RE = re.compile(rf"^\(({_REG_TEXT})\)$", re.IGNORECASE)
_AUTOINC_RE = re.compile(rf"^\(({_REG_TEXT})\)\+$", re.IGNORECASE)
_AUTODEC_RE = re.compile(rf"^-\(({_REG_TEXT})\)$", re.IGNORECASE)
_NAME_RE = re.compile(r"^[A-Za-z_.$][\w.$]*$")
_SYM_OFFSET_RE = re.compile(r"^(?P<sym>[A-Za-z_.$][\w.$]*)\s*(?P<op>[+-])\s*(?P<num>\w+)$")
#: Profiler markers — same scheme as the RISC assembler: ``;@42`` stamps a
#: source line, ``;@fn name`` marks a function-entry label.
_LINE_MARKER_RE = re.compile(r";@(\d+)")
_FN_MARKER_RE = re.compile(r";@fn\s+(\S+)")


def _reg_lookup(name: str, line: int) -> int:
    number = REGISTER_NAMES.get(name.lower())
    if number is None:
        raise VaxAssemblerError(f"bad register {name!r}", line)
    return number


def _parse_number(text: str, line: int) -> int:
    try:
        return int(text, 0)
    except ValueError:
        raise VaxAssemblerError(f"bad number {text!r}", line) from None


@dataclasses.dataclass
class _Operand:
    """A parsed operand with enough information for exact sizing."""

    kind: str  # literal, immediate, register, deferred, autoinc, autodec, disp, absolute, symbol
    reg: int = 0
    value: int = 0
    symbol: str | None = None
    #: constant added to a symbol's resolved value (``sym+4`` operands)
    addend: int = 0

    def size(self, width: int, access: str) -> int:
        if access == "b":
            return 2
        if self.kind == "literal":
            return 1
        if self.kind == "immediate":
            return 1 + width
        if self.kind in ("register", "deferred", "autoinc", "autodec"):
            return 1
        if self.kind == "disp":
            return 1 + _disp_bytes(self.value)
        if self.kind in ("absolute", "symbol"):
            return 5
        raise AssertionError(self.kind)


def _disp_bytes(value: int) -> int:
    if -128 <= value <= 127:
        return 1
    if -32768 <= value <= 32767:
        return 2
    return 4


def _symbolic(kind: str, text: str, line: int) -> "_Operand | None":
    """Parse ``sym`` or ``sym±offset`` into a symbolic operand."""
    if _NAME_RE.match(text):
        return _Operand(kind, symbol=text)
    match = _SYM_OFFSET_RE.match(text)
    if match:
        addend = _parse_number(match.group("num"), line)
        if match.group("op") == "-":
            addend = -addend
        return _Operand(kind, symbol=match.group("sym"), addend=addend)
    return None


def parse_operand(text: str, line: int) -> _Operand:
    text = text.strip()
    if text.startswith("@#"):
        rest = text[2:]
        operand = _symbolic("absolute", rest, line)
        if operand:
            return operand
        return _Operand("absolute", value=_parse_number(rest, line))
    if text.startswith("#"):
        rest = text[1:]
        if _NAME_RE.match(rest) and not rest.lstrip("-").isdigit():
            return _Operand("immediate", symbol=rest)
        value = _parse_number(rest, line)
        if 0 <= value <= 63:
            return _Operand("literal", value=value)
        return _Operand("immediate", value=value)
    lowered = text.lower()
    if lowered in REGISTER_NAMES:
        return _Operand("register", reg=REGISTER_NAMES[lowered])
    match = _AUTODEC_RE.match(text)
    if match:
        return _Operand("autodec", reg=_reg_lookup(match.group(1), line))
    match = _AUTOINC_RE.match(text)
    if match:
        return _Operand("autoinc", reg=_reg_lookup(match.group(1), line))
    match = _DEFERRED_RE.match(text)
    if match:
        return _Operand("deferred", reg=_reg_lookup(match.group(1), line))
    match = _DISP_RE.match(text)
    if match:
        disp = _parse_number(match.group(1), line)
        return _Operand("disp", reg=_reg_lookup(match.group(2), line), value=disp)
    if _NAME_RE.match(text):
        return _Operand("symbol", symbol=text)
    raise VaxAssemblerError(f"cannot parse operand {text!r}", line)


@dataclasses.dataclass
class _Item:
    kind: str  # "inst" or "data"
    mnemonic: str
    operands: list[str]
    line: int
    source: str
    section: str
    offset: int = 0
    size: int = 0
    #: enclosing function and high-level source line (profiler line table)
    func: str = ""
    src_line: int = 0


class VaxAssembler:
    def __init__(self, code_base: int = DEFAULT_CODE_BASE):
        self.code_base = code_base
        self.symbols: dict[str, int] = {}
        self._sym_sections: dict[str, tuple[str, int]] = {}
        self.equates: dict[str, int] = {}
        self._items: list[_Item] = []

    # -- public ----------------------------------------------------------------

    def assemble(self, source: str) -> Program:
        self._pass1(source)
        code_size = max(
            (i.offset + i.size for i in self._items if i.section == "text"), default=0
        )
        data_base = (self.code_base + code_size + 255) // 256 * 256
        bases = {"text": self.code_base, "data": data_base}
        for name, (section, offset) in self._sym_sections.items():
            self.symbols[name] = bases[section] + offset
        self.symbols.update(self.equates)
        code, data, line_table = self._pass2(bases)
        segments = [Segment(self.code_base, bytes(code), name="code")]
        if data:
            segments.append(Segment(data_base, bytes(data), name="data"))
        entry = self.symbols.get("__start", self.symbols.get("main"))
        if entry is None:
            raise VaxAssemblerError("no entry point: define __start or main")
        return Program(
            tuple(segments), entry, dict(self.symbols), line_table=line_table
        )

    # -- pass 1 -----------------------------------------------------------------

    def _pass1(self, source: str) -> None:
        section = "text"
        offsets = {"text": 0, "data": 0}
        # ;@fn markers (compiler output) decide function boundaries when
        # present; otherwise every non-local .text label opens a function.
        fn_markers = ";@fn" in source
        cur_func = ""
        for lineno, raw in enumerate(source.splitlines(), start=1):
            stripped = _strip_comment(raw)
            comment = raw[len(stripped) :]
            line = stripped.strip()
            fn = _FN_MARKER_RE.search(comment)
            if fn:
                cur_func = fn.group(1)
            while True:
                match = _LABEL_RE.match(line)
                if not match:
                    break
                name = match.group(1)
                if name in self._sym_sections:
                    raise VaxAssemblerError(f"duplicate label {name!r}", lineno)
                self._sym_sections[name] = (section, offsets[section])
                if not fn_markers and section == "text" and not name.startswith("."):
                    cur_func = name
                line = line[match.end() :].strip()
            if not line:
                continue
            parts = line.split(None, 1)
            mnemonic = parts[0].lower()
            operands = _split_operands(parts[1]) if len(parts) > 1 else []
            if mnemonic == ".text":
                section = "text"
                continue
            if mnemonic == ".data":
                section = "data"
                continue
            if mnemonic == ".global":
                continue
            if mnemonic == ".equ":
                self.equates[operands[0]] = _parse_number(operands[1], lineno)
                continue
            item = _Item("inst" if not mnemonic.startswith(".") else "data",
                         mnemonic, operands, lineno, line, section, offsets[section])
            if section == "text":
                src = _LINE_MARKER_RE.search(comment)
                item.func = cur_func
                item.src_line = int(src.group(1)) if src else 0
            item.size = self._sizeof(item, offsets[section])
            offsets[section] += item.size
            self._items.append(item)

    def _sizeof(self, item: _Item, offset: int) -> int:
        m = item.mnemonic
        if m == ".entry":
            return 2
        if m == ".long":
            return 4 * len(item.operands)
        if m == ".word":
            return 2 * len(item.operands)
        if m == ".byte":
            return len(item.operands)
        if m == ".space":
            return _parse_number(item.operands[0], item.line)
        if m == ".align":
            boundary = _parse_number(item.operands[0], item.line)
            return (-offset) % boundary
        if m in (".ascii", ".asciiz"):
            text = _parse_string(item.operands, item.line)
            return len(text) + (1 if m == ".asciiz" else 0)
        if m.startswith("."):
            raise VaxAssemblerError(f"unknown directive {m!r}", item.line)
        info = INSTRUCTIONS.get(m)
        if info is None:
            raise VaxAssemblerError(f"unknown mnemonic {m!r}", item.line)
        if len(item.operands) != len(info.operands):
            raise VaxAssemblerError(
                f"{m} expects {len(info.operands)} operand(s), got {len(item.operands)}",
                item.line,
            )
        size = 1
        for text, spec in zip(item.operands, info.operands):
            operand = parse_operand(text, item.line)
            size += operand.size(spec.width, spec.access)
        return size

    # -- pass 2 -----------------------------------------------------------------

    def _pass2(
        self, bases: dict[str, int]
    ) -> tuple[bytearray, bytearray, dict[int, tuple[str, int]]]:
        code = bytearray()
        data = bytearray()
        line_table: dict[int, tuple[str, int]] = {}
        for item in self._items:
            out = code if item.section == "text" else data
            if len(out) != item.offset:
                out.extend(b"\0" * (item.offset - len(out)))
            if item.section == "text":
                line_table[bases["text"] + item.offset] = (item.func, item.src_line)
            if item.mnemonic.startswith("."):
                self._emit_data(item, out)
            else:
                self._emit_instruction(item, out, bases["text"])
            if len(out) - item.offset != item.size:
                raise VaxAssemblerError(
                    f"sizing mismatch for {item.source!r}: reserved {item.size}, "
                    f"emitted {len(out) - item.offset}",
                    item.line,
                )
        return code, data, line_table

    def _resolve(self, symbol: str, line: int) -> int:
        if symbol not in self.symbols:
            raise VaxAssemblerError(f"undefined symbol {symbol!r}", line)
        return self.symbols[symbol]

    def _emit_data(self, item: _Item, out: bytearray) -> None:
        m = item.mnemonic
        if m == ".entry":
            mask = _parse_number(item.operands[0], item.line) if item.operands else 0
            out.extend(mask.to_bytes(2, "big"))
        elif m in (".long", ".word", ".byte"):
            width = {".long": 4, ".word": 2, ".byte": 1}[m]
            for text in item.operands:
                if _NAME_RE.match(text) and not text.lstrip("-").isdigit():
                    value = self._resolve(text, item.line)
                else:
                    value = _parse_number(text, item.line)
                out.extend((value & ((1 << (8 * width)) - 1)).to_bytes(width, "big"))
        elif m in (".ascii", ".asciiz"):
            text = _parse_string(item.operands, item.line)
            out.extend(text.encode("latin-1"))
            if m == ".asciiz":
                out.append(0)
        elif m in (".space", ".align"):
            out.extend(b"\0" * item.size)

    def _emit_instruction(self, item: _Item, out: bytearray, text_base: int) -> None:
        info = INSTRUCTIONS[item.mnemonic]
        address = text_base + item.offset
        out.append(info.opcode)
        cursor = address + 1
        for text, spec in zip(item.operands, info.operands):
            operand = parse_operand(text, item.line)
            encoded = self._encode_operand(operand, spec, cursor, item.line)
            out.extend(encoded)
            cursor += len(encoded)

    def _encode_operand(
        self, operand: _Operand, spec: OperandSpec, cursor: int, line: int
    ) -> bytes:
        if spec.access == "b":
            if operand.kind == "symbol":
                target = self._resolve(operand.symbol, line)
            elif operand.kind in ("immediate", "literal"):
                target = operand.value
            else:
                raise VaxAssemblerError("branch needs a label or address", line)
            disp = target - (cursor + 2)
            if not -32768 <= disp <= 32767:
                raise VaxAssemblerError(f"branch displacement {disp} out of range", line)
            return disp.to_bytes(2, "big", signed=True)

        kind = operand.kind
        if kind == "symbol":
            # bare symbol: absolute for address operands, immediate otherwise
            value = self._resolve(operand.symbol, line) + operand.addend
            if spec.access == "a":
                return bytes([(Mode.ABSOLUTE << 4) | 15]) + value.to_bytes(4, "big")
            return bytes([(Mode.AUTOINC << 4) | 15]) + (value & 0xFFFFFFFF).to_bytes(4, "big")
        if kind == "literal":
            return bytes([operand.value & 0x3F])
        if kind == "immediate":
            value = (
                self._resolve(operand.symbol, line) + operand.addend
                if operand.symbol
                else operand.value
            )
            mask = (1 << (8 * spec.width)) - 1
            return bytes([(Mode.AUTOINC << 4) | 15]) + (value & mask).to_bytes(
                spec.width, "big"
            )
        if kind == "register":
            return bytes([(Mode.REGISTER << 4) | operand.reg])
        if kind == "deferred":
            return bytes([(Mode.DEFERRED << 4) | operand.reg])
        if kind == "autoinc":
            return bytes([(Mode.AUTOINC << 4) | operand.reg])
        if kind == "autodec":
            return bytes([(Mode.AUTODEC << 4) | operand.reg])
        if kind == "absolute":
            value = (
                self._resolve(operand.symbol, line) + operand.addend
                if operand.symbol
                else operand.value
            )
            return bytes([(Mode.ABSOLUTE << 4) | 15]) + (value & 0xFFFFFFFF).to_bytes(4, "big")
        if kind == "disp":
            size = _disp_bytes(operand.value)
            mode = {1: Mode.DISP8, 2: Mode.DISP16, 4: Mode.DISP32}[size]
            return bytes([(mode << 4) | operand.reg]) + operand.value.to_bytes(
                size, "big", signed=True
            )
        raise AssertionError(kind)


def _strip_comment(line: str) -> str:
    in_string = False
    for i, ch in enumerate(line):
        if ch == '"':
            in_string = not in_string
        elif not in_string and ch == ";":
            return line[:i]
    return line


def _split_operands(text: str) -> list[str]:
    parts: list[str] = []
    depth = 0
    in_string = False
    current: list[str] = []
    for ch in text:
        if ch == '"':
            in_string = not in_string
        if not in_string:
            if ch == "(":
                depth += 1
            elif ch == ")":
                depth -= 1
            elif ch == "," and depth == 0:
                parts.append("".join(current).strip())
                current = []
                continue
        current.append(ch)
    tail = "".join(current).strip()
    if tail:
        parts.append(tail)
    return parts


def _parse_string(operands: list[str], line: int) -> str:
    text = ",".join(operands).strip()
    if not (text.startswith('"') and text.endswith('"')):
        raise VaxAssemblerError(f"expected string literal, got {text!r}", line)
    return text[1:-1].encode().decode("unicode_escape")


def assemble_vax(source: str, code_base: int = DEFAULT_CODE_BASE) -> Program:
    """Assemble VAX-like assembly into a loadable program."""
    return VaxAssembler(code_base).assemble(source)
