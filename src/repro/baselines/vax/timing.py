"""Microcoded cycle-cost model for the VAX-like baseline.

Calibration target: the VAX-11/780 ran a 200 ns microcycle and averaged
roughly ten microcycles per instruction on compiled code — the "fast clock,
slow instructions" profile the paper contrasts with RISC I's "slower clock,
one instruction per cycle".  The knobs below reproduce that profile:

* every instruction pays a decode base (microcode dispatch);
* every operand specifier costs extra microcycles to parse, more for the
  indirecting modes, plus two cycles per actual memory reference (memory
  references are counted by the simulator as they happen, so a ``modify``
  operand in memory pays for both its read and its write);
* multiply/divide iterate in microcode;
* CALLS/RET pay a large fixed sequencing cost on top of the many stack
  references they perform — this is precisely the procedure-call overhead
  the paper's register-window argument attacks.
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass(frozen=True)
class VaxTiming:
    cycle_ns: float = 200.0
    base_cycles: dict = dataclasses.field(
        default_factory=lambda: {
            "move": 2,
            "alu": 2,
            "push": 3,
            "branch": 4,
            "mul": 14,
            "div": 28,
            "calls": 16,
            "ret": 14,
            "control": 2,
        }
    )
    #: specifier-parse cost by addressing-mode family
    specifier_cycles: dict = dataclasses.field(
        default_factory=lambda: {
            "literal": 1,
            "immediate": 1,
            "register": 0,
            "deferred": 1,
            "autoinc": 1,
            "autodec": 1,
            "disp": 2,
            "absolute": 2,
            "branch": 0,
        }
    )
    memory_cycles: int = 2  # per actual data-memory reference

    def nanoseconds(self, cycles: int) -> float:
        return cycles * self.cycle_ns

    def milliseconds(self, cycles: int) -> float:
        return cycles * self.cycle_ns / 1e6
