"""Disassembler for the VAX-like baseline.

Walks the variable-length instruction stream, decoding operand specifiers
exactly as the simulator does; used for debugging compiled CISC code and
by the round-trip tests that pin the encoder and decoder together.
"""

from __future__ import annotations

from repro.baselines.vax.isa import BY_OPCODE, Mode
from repro.core.program import Program

_REG_NAMES = {12: "ap", 13: "fp", 14: "sp", 15: "pc"}


def _reg(number: int) -> str:
    return _REG_NAMES.get(number, f"r{number}")


def _signed(value: int, bits: int) -> int:
    mask = (1 << bits) - 1
    value &= mask
    return value - (1 << bits) if value & (1 << (bits - 1)) else value


class _Stream:
    def __init__(self, data: bytes, offset: int = 0):
        self.data = data
        self.pos = offset

    def take(self, width: int) -> int:
        value = int.from_bytes(self.data[self.pos : self.pos + width], "big")
        self.pos += width
        return value

    @property
    def exhausted(self) -> bool:
        return self.pos >= len(self.data)


def _operand_text(stream: _Stream, width: int) -> str:
    spec = stream.take(1)
    if spec < 0x40:
        return f"#{spec}"
    mode, reg = spec >> 4, spec & 0xF
    if mode == Mode.REGISTER:
        return _reg(reg)
    if mode == Mode.DEFERRED:
        return f"({_reg(reg)})"
    if mode == Mode.AUTODEC:
        return f"-({_reg(reg)})"
    if mode == Mode.AUTOINC:
        if reg == 15:
            return f"#{_signed(stream.take(width), width * 8)}"
        return f"({_reg(reg)})+"
    if mode == Mode.ABSOLUTE and reg == 15:
        return f"@#{stream.take(4):#x}"
    if mode in (Mode.DISP8, Mode.DISP16, Mode.DISP32):
        size = {Mode.DISP8: 1, Mode.DISP16: 2, Mode.DISP32: 4}[Mode(mode)]
        disp = _signed(stream.take(size), size * 8)
        return f"{disp}({_reg(reg)})"
    return f"<bad specifier {spec:#04x}>"


def disassemble_one(data: bytes, offset: int, address: int) -> tuple[str, int]:
    """Disassemble one instruction; return (text, bytes consumed)."""
    stream = _Stream(data, offset)
    opcode = stream.take(1)
    info = BY_OPCODE.get(opcode)
    if info is None:
        return f".byte {opcode:#04x}", 1
    operands: list[str] = []
    for spec in info.operands:
        if spec.access == "b":
            disp = _signed(stream.take(2), 16)
            target = address + (stream.pos - offset) + disp
            operands.append(f"{target:#x}")
        else:
            operands.append(_operand_text(stream, spec.width))
    text = info.mnemonic + (" " + ", ".join(operands) if operands else "")
    return text, stream.pos - offset


def disassemble_vax_program(program: Program, skip_entry_masks: bool = True) -> str:
    """Disassemble the code segment of a VAX-like program.

    Function labels are used both for display and to skip each
    procedure's 2-byte entry mask (which is data, not an instruction).
    """
    address_names = {addr: name for name, addr in program.symbols.items()}
    lines: list[str] = []
    for segment in program.segments:
        if segment.name != "code":
            continue
        offset = 0
        while offset < len(segment.data):
            address = segment.base + offset
            label = address_names.get(address)
            if label:
                lines.append(f"{label}:")
                if skip_entry_masks and _looks_like_entry(segment.data, offset, label):
                    mask = int.from_bytes(segment.data[offset : offset + 2], "big")
                    lines.append(f"  {address:#010x}:  .entry {mask:#06x}")
                    offset += 2
                    continue
            text, consumed = disassemble_one(segment.data, offset, address)
            raw = segment.data[offset : offset + consumed].hex()
            lines.append(f"  {address:#010x}:  {raw:<20} {text}")
            offset += consumed
    return "\n".join(lines)


def _looks_like_entry(data: bytes, offset: int, label: str) -> bool:
    """Heuristic: compiler-emitted procedures start with an entry mask.

    Entry points named ``__start`` (raw code) and local labels (dots) do
    not carry masks; everything else produced by the CISC backend does.
    """
    return not label.startswith((".", "__start"))
