"""The VAX-like CISC baseline machine.

A deliberately faithful *class* model rather than a bit-exact VAX: one-byte
opcodes, VAX operand specifiers (short literal, register, register
deferred, autoincrement/autodecrement, displacement, immediate, absolute),
three-operand arithmetic, memory-to-memory moves, and the expensive
CALLS/RET procedure linkage with entry masks — everything the paper's
comparison leans on.  Simplifications (AND instead of BIC, 16-bit
conditional branch displacements, big-endian memory shared with the RISC
side) are documented in DESIGN.md and favour the baseline or are neutral.
"""

from repro.baselines.vax.assembler import VaxAssemblerError, assemble_vax
from repro.baselines.vax.cpu import VaxCPU
from repro.baselines.vax.timing import VaxTiming

__all__ = ["VaxAssemblerError", "VaxCPU", "VaxTiming", "assemble_vax"]
