"""Instruction set of the VAX-like baseline.

Opcodes follow the real VAX numbering where one exists (MOVL = 0xD0,
ADDL3 = 0xC1, CALLS = 0xFB, ...); the handful of convenience instructions
that real VAX spells differently (ANDL2/3 instead of BICL2/3) take unused
opcodes and are documented as simplifications.

Each instruction lists its operands as ``(access, width)`` pairs:

* ``r`` — read value
* ``w`` — write value
* ``m`` — modify (read then write)
* ``a`` — address (effective address is the operand)
* ``b`` — branch displacement (16-bit, a documented simplification of
  VAX's 8-bit conditional branches)
"""

from __future__ import annotations

import dataclasses
import enum


class Mode(enum.IntEnum):
    """Operand-specifier addressing modes (high nibble of the spec byte)."""

    LITERAL = 0x0  # modes 0..3: 6-bit short literal
    REGISTER = 0x5
    DEFERRED = 0x6  # (Rn)
    AUTODEC = 0x7  # -(Rn)
    AUTOINC = 0x8  # (Rn)+ ; reg 15 -> immediate
    ABSOLUTE = 0x9  # with reg 15: @#address
    DISP8 = 0xA
    DISP16 = 0xC
    DISP32 = 0xE


#: Register aliases.
AP, FP, SP, PC = 12, 13, 14, 15
REGISTER_NAMES = {**{f"r{i}": i for i in range(16)}, "ap": AP, "fp": FP, "sp": SP, "pc": PC}


@dataclasses.dataclass(frozen=True)
class OperandSpec:
    access: str  # r, w, m, a, b
    width: int  # 1, 2, 4


def _ops(*pairs: str) -> tuple[OperandSpec, ...]:
    return tuple(OperandSpec(p[0], int(p[1])) for p in pairs)


@dataclasses.dataclass(frozen=True)
class VaxOpcodeInfo:
    opcode: int
    mnemonic: str
    operands: tuple[OperandSpec, ...]
    kind: str  # classification for the timing model


#: mnemonic -> definition.
INSTRUCTIONS: dict[str, VaxOpcodeInfo] = {
    info.mnemonic: info
    for info in (
        VaxOpcodeInfo(0x00, "halt", _ops(), "control"),
        VaxOpcodeInfo(0x04, "ret", _ops(), "ret"),
        VaxOpcodeInfo(0x11, "brb", _ops("b2"), "branch"),
        VaxOpcodeInfo(0x31, "brw", _ops("b2"), "branch"),
        VaxOpcodeInfo(0x12, "bneq", _ops("b2"), "branch"),
        VaxOpcodeInfo(0x13, "beql", _ops("b2"), "branch"),
        VaxOpcodeInfo(0x14, "bgtr", _ops("b2"), "branch"),
        VaxOpcodeInfo(0x15, "bleq", _ops("b2"), "branch"),
        VaxOpcodeInfo(0x18, "bgeq", _ops("b2"), "branch"),
        VaxOpcodeInfo(0x19, "blss", _ops("b2"), "branch"),
        VaxOpcodeInfo(0x1A, "bgtru", _ops("b2"), "branch"),
        VaxOpcodeInfo(0x1B, "blequ", _ops("b2"), "branch"),
        VaxOpcodeInfo(0x1E, "bgequ", _ops("b2"), "branch"),
        VaxOpcodeInfo(0x1F, "blssu", _ops("b2"), "branch"),
        VaxOpcodeInfo(0x17, "jmp", _ops("a4"), "branch"),
        VaxOpcodeInfo(0xFB, "calls", _ops("r4", "a4"), "calls"),
        VaxOpcodeInfo(0x90, "movb", _ops("r1", "w1"), "move"),
        VaxOpcodeInfo(0xB0, "movw", _ops("r2", "w2"), "move"),
        VaxOpcodeInfo(0xD0, "movl", _ops("r4", "w4"), "move"),
        VaxOpcodeInfo(0x9A, "movzbl", _ops("r1", "w4"), "move"),
        VaxOpcodeInfo(0x98, "cvtbl", _ops("r1", "w4"), "move"),
        VaxOpcodeInfo(0x3C, "movzwl", _ops("r2", "w4"), "move"),
        VaxOpcodeInfo(0x32, "cvtwl", _ops("r2", "w4"), "move"),
        VaxOpcodeInfo(0xDE, "moval", _ops("a4", "w4"), "move"),
        VaxOpcodeInfo(0xDD, "pushl", _ops("r4"), "push"),
        VaxOpcodeInfo(0xD4, "clrl", _ops("w4"), "move"),
        VaxOpcodeInfo(0xD5, "tstl", _ops("r4"), "alu"),
        VaxOpcodeInfo(0xD6, "incl", _ops("m4"), "alu"),
        VaxOpcodeInfo(0xD7, "decl", _ops("m4"), "alu"),
        VaxOpcodeInfo(0xCE, "mnegl", _ops("r4", "w4"), "alu"),
        VaxOpcodeInfo(0xD2, "mcoml", _ops("r4", "w4"), "alu"),
        VaxOpcodeInfo(0xC0, "addl2", _ops("r4", "m4"), "alu"),
        VaxOpcodeInfo(0xC1, "addl3", _ops("r4", "r4", "w4"), "alu"),
        VaxOpcodeInfo(0xC2, "subl2", _ops("r4", "m4"), "alu"),
        VaxOpcodeInfo(0xC3, "subl3", _ops("r4", "r4", "w4"), "alu"),
        VaxOpcodeInfo(0xC4, "mull2", _ops("r4", "m4"), "mul"),
        VaxOpcodeInfo(0xC5, "mull3", _ops("r4", "r4", "w4"), "mul"),
        VaxOpcodeInfo(0xC6, "divl2", _ops("r4", "m4"), "div"),
        VaxOpcodeInfo(0xC7, "divl3", _ops("r4", "r4", "w4"), "div"),
        VaxOpcodeInfo(0xC8, "bisl2", _ops("r4", "m4"), "alu"),
        VaxOpcodeInfo(0xC9, "bisl3", _ops("r4", "r4", "w4"), "alu"),
        VaxOpcodeInfo(0xCC, "xorl2", _ops("r4", "m4"), "alu"),
        VaxOpcodeInfo(0xCD, "xorl3", _ops("r4", "r4", "w4"), "alu"),
        VaxOpcodeInfo(0xE0, "andl2", _ops("r4", "m4"), "alu"),
        VaxOpcodeInfo(0xE1, "andl3", _ops("r4", "r4", "w4"), "alu"),
        VaxOpcodeInfo(0x78, "ashl", _ops("r1", "r4", "w4"), "alu"),
        VaxOpcodeInfo(0xD1, "cmpl", _ops("r4", "r4"), "alu"),
        VaxOpcodeInfo(0x91, "cmpb", _ops("r1", "r1"), "alu"),
        VaxOpcodeInfo(0xB1, "cmpw", _ops("r2", "r2"), "alu"),
    )
}

BY_OPCODE: dict[int, VaxOpcodeInfo] = {info.opcode: info for info in INSTRUCTIONS.values()}

#: Conditional-branch condition evaluators on (n, z, v, c).
BRANCH_CONDITIONS = {
    "brb": lambda n, z, v, c: True,
    "brw": lambda n, z, v, c: True,
    "beql": lambda n, z, v, c: z,
    "bneq": lambda n, z, v, c: not z,
    "blss": lambda n, z, v, c: n,
    "bleq": lambda n, z, v, c: n or z,
    "bgtr": lambda n, z, v, c: not (n or z),
    "bgeq": lambda n, z, v, c: not n,
    "blssu": lambda n, z, v, c: c,
    "blequ": lambda n, z, v, c: c or z,
    "bgtru": lambda n, z, v, c: not (c or z),
    "bgequ": lambda n, z, v, c: not c,
}
