"""Simulator for the VAX-like baseline, with the microcoded cost model.

Executes programs produced by :func:`repro.baselines.vax.assembler.assemble_vax`,
charging cycles per the :class:`repro.baselines.vax.timing.VaxTiming` model
and counting real memory traffic — including every stack reference made by
the CALLS/RET procedure linkage, which is the quantity the paper's
register-window comparison cares about.
"""

from __future__ import annotations

import dataclasses
import warnings
from collections import Counter

from repro.baselines.vax.isa import (
    AP,
    BRANCH_CONDITIONS,
    BY_OPCODE,
    FP,
    Mode,
    SP,
    VaxOpcodeInfo,
)
from repro.baselines.vax.timing import VaxTiming
from repro.core.api import (
    SNAPSHOT_SCHEMA_VERSION,
    MachineHalted,
    RunResult,
    StepLimitExceeded,
    pack_bytes,
    register_stats_type,
    resolve_engine,
    resolve_max_steps,
    unpack_bytes,
)
from repro.core.program import Program
from repro.machine.memory import Memory
from repro.machine.traps import Trap, TrapKind
from repro.obs.events import EventKind
from repro.obs.tracer import NULL_TRACER

WORD = 0xFFFFFFFF
SIGN = 0x80000000

MMIO_BASE = 0x7F000000
MMIO_PUTCHAR = MMIO_BASE + 0x0
MMIO_PUTINT = MMIO_BASE + 0x4
MMIO_HALT = MMIO_BASE + 0xC


def _signed(value: int, bits: int = 32) -> int:
    mask = (1 << bits) - 1
    value &= mask
    return value - (1 << bits) if value & (1 << (bits - 1)) else value


#: The halt signal is the unified API's — kept under the old internal name.
_Halt = MachineHalted


@dataclasses.dataclass
class VaxStats:
    """Execution counters for one VAX-like run."""

    instructions: int = 0
    cycles: int = 0
    by_mnemonic: Counter = dataclasses.field(default_factory=Counter)
    inst_bytes: int = 0
    data_reads: int = 0
    data_writes: int = 0
    calls: int = 0
    returns: int = 0
    call_linkage_refs: int = 0  # memory references made by CALLS/RET themselves
    max_call_depth: int = 1

    @property
    def data_references(self) -> int:
        return self.data_reads + self.data_writes

    def summary(self) -> str:
        lines = [
            f"instructions executed : {self.instructions}",
            f"cycles                : {self.cycles}",
            f"CPI                   : {self.cycles / self.instructions:.3f}"
            if self.instructions
            else "CPI                   : n/a",
            f"instruction bytes     : {self.inst_bytes}",
            f"data memory refs      : {self.data_references}"
            f" ({self.data_reads} reads, {self.data_writes} writes)",
            f"calls / returns       : {self.calls} / {self.returns}",
            f"call linkage refs     : {self.call_linkage_refs}",
            f"max call depth        : {self.max_call_depth}",
        ]
        return "\n".join(lines)

    def to_dict(self) -> dict:
        payload = {
            field.name: getattr(self, field.name)
            for field in dataclasses.fields(self)
            if field.name != "by_mnemonic"
        }
        payload["by_mnemonic"] = dict(self.by_mnemonic)
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "VaxStats":
        data = dict(payload)
        data["by_mnemonic"] = Counter(data.get("by_mnemonic", {}))
        return cls(**data)


register_stats_type("cisc", VaxStats)


class VaxExecutionResult(RunResult):
    """Deprecated alias for :class:`repro.core.api.RunResult`.

    Kept so pre-unification callers and cached farm artifacts still load;
    new code should construct and consume :class:`RunResult`.
    """

    def __init__(self, exit_code: int, stats: VaxStats, output: str):
        warnings.warn(
            "VaxExecutionResult is deprecated; use repro.core.api.RunResult",
            DeprecationWarning,
            stacklevel=2,
        )
        super().__init__(machine="cisc", exit_code=exit_code, output=output, stats=stats)

    @classmethod
    def from_dict(cls, payload: dict) -> RunResult:
        """Load a result payload, including legacy ones with no machine tag."""
        return RunResult.from_dict(payload, default_machine="cisc")


@dataclasses.dataclass
class _Operand:
    kind: str  # "reg", "mem", "imm"
    value: int  # register number, address, or immediate value


class VaxCPU:
    """The VAX-like processor attached to a memory.

    Implements the unified :class:`repro.core.api.Machine` protocol, the
    same surface as the RISC I :class:`~repro.core.cpu.CPU`.
    """

    #: machine tag used in unified result payloads
    name = "cisc"

    def __init__(
        self,
        memory_size: int = 1 << 20,
        timing: VaxTiming | None = None,
        tracer=None,
        metrics=None,
        decode_cache: bool = True,
    ):
        # real VAX permits unaligned operands, so no alignment trap here
        self.memory = Memory(memory_size, check_alignment=False)
        self.regs = [0] * 16
        self.timing = timing or VaxTiming()
        self.stats = VaxStats()
        self.metrics = metrics
        self._install_tracer(tracer)
        self._halted = False
        self._exit_code: int | None = None
        self.pc = 0
        self.n = self.z = self.v = self.c = False
        self._console: list[str] = []
        self._depth = 1
        self._stack_top = memory_size - 16
        #: pc -> (info, length, cycles, operand evaluators, branch_disp):
        #: the parse of one instruction, reusable because specifier bytes
        #: are immutable until something writes over them (watched below).
        #: Operand *values* are not cached — the evaluators re-read
        #: registers and apply autoincrement/autodecrement per execution.
        self._decode_cache: dict = {}
        self._use_cache = decode_cache
        #: Optional per-instruction hook ``fn(pc, info, operands,
        #: branch_disp)``, fired after operand evaluation and before
        #: execution — identically on both engine paths (there is one
        #: step loop).  The pipeline timing model hangs off this.
        self.on_execute = None
        self._cache_lo = memory_size  # lowest cached instruction byte
        self._cache_hi = 0  # one past the highest cached byte
        self.memory.write_watch = self._note_code_write

    def _install_tracer(self, tracer) -> None:
        """Resolve the tracer once; the step loop only tests booleans."""
        self.tracer = tracer if tracer is not None else NULL_TRACER
        wants = self.tracer.wants
        self._trace_retire = wants(EventKind.RETIRE)
        self._trace_mem = wants(EventKind.MEM_REF)
        self._trace_flow = wants(EventKind.CALL) or wants(EventKind.RET)
        self._trace_trap = wants(EventKind.TRAP)

    def load(self, program: Program) -> None:
        for segment in program.segments:
            self.memory.load_image(segment.base, segment.data)
        self.pc = program.entry
        self._halted = False
        self._exit_code = None
        self.regs[SP] = self._stack_top
        self.regs[FP] = self._stack_top
        self.regs[AP] = self._stack_top

    # -- execution --------------------------------------------------------------

    @property
    def halted(self) -> bool:
        """True once the loaded program has executed its halt."""
        return self._halted

    @property
    def exit_code(self) -> int | None:
        return self._exit_code

    def _halt(self, code: int) -> None:
        self._halted = True
        self._exit_code = code
        raise _Halt(code)

    def run(
        self,
        max_instructions: int | None = None,
        *,
        max_steps: int | None = None,
        tracer=None,
        engine: str | None = None,
        record=None,
        uarch=None,
    ) -> RunResult:
        """Run until the program halts.

        Exceeding the step budget raises :class:`StepLimitExceeded` with
        the partial stats attached.  ``max_instructions`` is the
        deprecated spelling of ``max_steps``.  ``engine`` selects the
        execution path — ``"fast"`` (default) uses the per-PC operand
        decode cache, ``"reference"`` re-parses every instruction; both
        are differentially identical.  ``record`` opts this run into the
        persistent run ledger (``True``, a ledger root path, or a
        :class:`~repro.obs.ledger.Ledger`); ``None`` defers to
        ``$REPRO_LEDGER``.  ``uarch`` opts the run into the pipeline
        timing model (same forms as the RISC I ``run``); the resulting
        :class:`~repro.uarch.pipeline.PipelineStats` is attached as
        ``result.pipeline``.
        """
        import time as _time

        limit = resolve_max_steps(max_instructions, max_steps)
        if tracer is not None:
            self._install_tracer(tracer)
        use_cache_before = self._use_cache
        # ``decode_cache=False`` at construction is a hard off-switch;
        # otherwise the engine selection decides
        engine_name = resolve_engine(engine)
        self._use_cache = use_cache_before and engine_name == "fast"
        probe = None
        if uarch is not None and uarch is not False:
            from repro.uarch import PipelineModel, attach_pipeline, resolve_uarch

            config = resolve_uarch(uarch)
            probe = attach_pipeline(
                self, PipelineModel(config, machine=self.name, tracer=self.tracer)
            )
        started = _time.perf_counter()
        try:
            for _ in range(limit):
                self.step()
            raise StepLimitExceeded(limit, pc=self.pc, stats=self.stats)
        except _Halt as halt:
            wall_s = _time.perf_counter() - started
            result = RunResult(self.name, halt.code, "".join(self._console), self.stats)
            if probe is not None:
                result.pipeline = probe.finalize()[0]
            if self.metrics is not None:
                from repro.obs.metrics import record_machine_run

                record_machine_run(self.metrics, result)
            from repro.obs.ledger import maybe_record_run

            maybe_record_run(
                result,
                engine=engine_name,
                wall_s=wall_s,
                record=record,
                metrics=self.metrics,
            )
            return result
        finally:
            self._use_cache = use_cache_before
            if probe is not None:
                from repro.uarch import detach_pipeline

                detach_pipeline(self, probe)

    def step(self) -> None:
        pc = self.pc
        entry = self._decode_cache.get(pc) if self._use_cache else None
        if entry is not None:
            info, length, cycles, evaluators, branch_disp = entry
            self.pc = pc + length
            self.stats.inst_bytes += length
            # specifier side effects (autoincrement/autodecrement) and
            # register-relative addresses are applied per execution, in
            # specifier order, exactly as a fresh parse would
            operands = [evaluate() for evaluate in evaluators]
        else:
            opcode = self._fetch(1)
            info = BY_OPCODE.get(opcode)
            if info is None:
                raise Trap(
                    TrapKind.ILLEGAL_INSTRUCTION, f"opcode {opcode:#04x}", pc=self.pc
                )
            cycles = self.timing.base_cycles[info.kind]
            operands = []
            evaluators = []
            branch_disp: int | None = None
            for spec in info.operands:
                if spec.access == "b":
                    branch_disp = _signed(self._fetch(2), 16)
                else:
                    evaluate, mode_family = self._predecode_operand(spec.width)
                    cycles += self.timing.specifier_cycles[mode_family]
                    evaluators.append(evaluate)
                    # evaluated here, mid-parse, so side effects land at
                    # the same point as the historical eager decoder
                    operands.append(evaluate())
            if self._use_cache:
                self._decode_cache[pc] = (
                    info,
                    self.pc - pc,
                    cycles,
                    tuple(evaluators),
                    branch_disp,
                )
                if pc < self._cache_lo:
                    self._cache_lo = pc
                if self.pc > self._cache_hi:
                    self._cache_hi = self.pc
        if self.on_execute is not None:
            self.on_execute(pc, info, operands, branch_disp)
        reads_before = self.memory.stats.data_reads
        writes_before = self.memory.stats.data_writes
        try:
            self._execute(info, operands, branch_disp)
        except Trap as trap:
            if self._trace_trap:
                self.tracer.trap(self.stats.cycles, pc, trap.kind.name, trap.detail)
            raise
        finally:
            refs = (
                self.memory.stats.data_reads
                - reads_before
                + self.memory.stats.data_writes
                - writes_before
            )
            cycles += refs * self.timing.memory_cycles
            self.stats.cycles += cycles
            self.stats.instructions += 1
            self.stats.by_mnemonic[info.mnemonic] += 1
            if self._trace_retire:
                self.tracer.retire(self.stats.cycles, pc, info.mnemonic, cycles)

    # -- snapshot / restore ------------------------------------------------------

    def snapshot(self) -> dict:
        """Complete architectural state, JSON-safe and bit-exact.

        The operand decode cache is *not* state — it is rebuilt on demand
        and cleared by :meth:`restore` (the restored memory may hold
        different instruction bytes).
        """
        return {
            "schema": SNAPSHOT_SCHEMA_VERSION,
            "machine": self.name,
            "pc": self.pc,
            "halted": self._halted,
            "exit_code": self._exit_code,
            "console": "".join(self._console),
            "depth": self._depth,
            "regs": list(self.regs),
            "flags": [self.n, self.z, self.v, self.c],
            "stats": self.stats.to_dict(),
            "memory": {
                "size": self.memory.size,
                "data": pack_bytes(self.memory._bytes),
                "inst_fetches": self.memory.stats.inst_fetches,
                "data_reads": self.memory.stats.data_reads,
                "data_writes": self.memory.stats.data_writes,
            },
        }

    def restore(self, state: dict) -> None:
        """Install a :meth:`snapshot`; the register list and memory bytes
        are updated in place (cached operand evaluators hold references)."""
        if state.get("machine") != self.name:
            raise ValueError(
                f"snapshot is for machine {state.get('machine')!r}, not {self.name!r}"
            )
        if state.get("schema") != SNAPSHOT_SCHEMA_VERSION:
            raise ValueError(f"unsupported snapshot schema {state.get('schema')!r}")
        memory = state["memory"]
        if memory["size"] != self.memory.size:
            raise ValueError(
                f"snapshot memory is {memory['size']} bytes, "
                f"this CPU has {self.memory.size}"
            )
        image = unpack_bytes(memory["data"])
        if len(image) != self.memory.size:
            raise ValueError("snapshot memory image does not match its declared size")
        self.pc = state["pc"]
        self._halted = state["halted"]
        self._exit_code = state["exit_code"]
        self._console = [state["console"]] if state["console"] else []
        self._depth = state["depth"]
        self.regs[:] = state["regs"]
        self.n, self.z, self.v, self.c = state["flags"]
        self.stats = VaxStats.from_dict(state["stats"])
        self.memory._bytes[:] = image
        self.memory.stats.inst_fetches = memory["inst_fetches"]
        self.memory.stats.data_reads = memory["data_reads"]
        self.memory.stats.data_writes = memory["data_writes"]
        self._decode_cache.clear()
        self._cache_lo = self.memory.size
        self._cache_hi = 0

    # -- instruction stream ------------------------------------------------------

    def _fetch(self, width: int) -> int:
        value = int.from_bytes(self.memory.dump(self.pc, width), "big")
        self.pc += width
        self.stats.inst_bytes += width
        return value

    def _predecode_operand(self, width: int):
        """Parse one operand specifier into a reusable evaluator.

        Returns ``(evaluate, mode_family)``.  The evaluator produces this
        specifier's :class:`_Operand` for one execution; modes whose value
        depends on register state (deferred, displacement, autoincrement,
        autodecrement) re-read — and for the auto modes, re-modify — the
        register each time, so replaying a cached parse is
        indistinguishable from a fresh one.  Static modes (literal,
        register, immediate, absolute) share one read-only operand.
        """
        regs = self.regs
        spec = self._fetch(1)
        if spec < 0x40:
            operand = _Operand("imm", spec)
            return (lambda: operand), "literal"
        mode = spec >> 4
        reg = spec & 0xF
        if mode == Mode.REGISTER:
            operand = _Operand("reg", reg)
            return (lambda: operand), "register"
        if mode == Mode.DEFERRED:
            return (lambda: _Operand("mem", regs[reg])), "deferred"
        if mode == Mode.AUTODEC:
            def evaluate():
                regs[reg] = (regs[reg] - width) & WORD
                return _Operand("mem", regs[reg])

            return evaluate, "autodec"
        if mode == Mode.AUTOINC:
            if reg == 15:  # immediate
                operand = _Operand("imm", self._fetch(width))
                return (lambda: operand), "immediate"

            def evaluate():
                address = regs[reg]
                regs[reg] = (address + width) & WORD
                return _Operand("mem", address)

            return evaluate, "autoinc"
        if mode == Mode.ABSOLUTE and reg == 15:
            operand = _Operand("mem", self._fetch(4))
            return (lambda: operand), "absolute"
        if mode in (Mode.DISP8, Mode.DISP16, Mode.DISP32):
            size = {Mode.DISP8: 1, Mode.DISP16: 2, Mode.DISP32: 4}[Mode(mode)]
            disp = _signed(self._fetch(size), size * 8)
            return (lambda: _Operand("mem", (regs[reg] + disp) & WORD)), "disp"
        raise Trap(TrapKind.ILLEGAL_INSTRUCTION, f"operand specifier {spec:#04x}", pc=self.pc)

    def _decode_operand(self, width: int) -> tuple[_Operand, str]:
        """Parse and evaluate one specifier (the historical eager form)."""
        evaluate, mode_family = self._predecode_operand(width)
        return evaluate(), mode_family

    def _note_code_write(self, address: int, width: int = 4) -> None:
        """Drop cached decodings when a store may have touched one.

        Stores land almost exclusively in stack/heap space far above the
        code, so the common case is two comparisons; a hit (self-modifying
        code) clears the whole cache rather than tracking per-instruction
        extents.
        """
        if address < self._cache_hi and address + width > self._cache_lo:
            self._decode_cache.clear()
            self._cache_lo = self.memory.size
            self._cache_hi = 0

    # -- operand access -----------------------------------------------------------

    def _read(self, operand: _Operand, width: int, signed: bool = False) -> int:
        if operand.kind == "imm":
            value = operand.value
        elif operand.kind == "reg":
            value = self.regs[operand.value] & ((1 << (8 * width)) - 1)
        else:
            value = self.memory.read(operand.value, width)
            self.stats.data_reads += 1
            if self._trace_mem:
                self.tracer.mem_ref(self.stats.cycles, self.pc, operand.value, "r", width)
        if signed:
            value = _signed(value, width * 8) & WORD
        return value & WORD if width == 4 else value

    def _write(self, operand: _Operand, value: int, width: int) -> None:
        if operand.kind == "imm":
            raise Trap(TrapKind.ILLEGAL_INSTRUCTION, "write to immediate operand")
        if operand.kind == "reg":
            if width == 4:
                self.regs[operand.value] = value & WORD
            else:
                mask = (1 << (8 * width)) - 1
                self.regs[operand.value] = (self.regs[operand.value] & ~mask & WORD) | (
                    value & mask
                )
            return
        address = operand.value
        if address >= MMIO_BASE:
            self._mmio_store(address, value, width)
            return
        self.memory.write(address, value, width)
        self.stats.data_writes += 1
        if self._trace_mem:
            self.tracer.mem_ref(self.stats.cycles, self.pc, address, "w", width)

    def _address(self, operand: _Operand) -> int:
        if operand.kind != "mem":
            raise Trap(TrapKind.ILLEGAL_INSTRUCTION, "address operand must reference memory")
        return operand.value

    def _mmio_store(self, address: int, value: int, width: int = 4) -> None:
        self.stats.data_writes += 1
        self.memory.stats.data_writes += 1  # charged like any other store
        # emitted before the store takes effect so the halting store (and
        # a trapping one) still appears in the trace — keeping the MEM_REF
        # stream in lockstep with the data_writes counter
        if self._trace_mem:
            self.tracer.mem_ref(self.stats.cycles, self.pc, address, "w", width)
        if address == MMIO_PUTCHAR:
            self._console.append(chr(value & 0xFF))
        elif address == MMIO_PUTINT:
            self._console.append(str(_signed(value)))
        elif address == MMIO_HALT:
            self._halt(_signed(value))
        else:
            raise Trap(
                TrapKind.BUS_ERROR, f"unknown MMIO address {address:#x}", pc=self.pc
            )

    # -- flags ----------------------------------------------------------------------

    def _set_nz(self, result: int, width: int = 4) -> None:
        result &= (1 << (8 * width)) - 1
        self.z = result == 0
        self.n = bool(result & (1 << (8 * width - 1)))

    # -- stack helpers -----------------------------------------------------------------

    def _push(self, value: int) -> None:
        self.regs[SP] = (self.regs[SP] - 4) & WORD
        self.memory.write(self.regs[SP], value & WORD, 4)
        self.stats.data_writes += 1

    def _pop(self) -> int:
        value = self.memory.read(self.regs[SP], 4)
        self.stats.data_reads += 1
        self.regs[SP] = (self.regs[SP] + 4) & WORD
        return value

    # -- execution of each instruction ---------------------------------------------------

    def _execute(
        self, info: VaxOpcodeInfo, ops: list[_Operand], branch_disp: int | None
    ) -> None:
        m = info.mnemonic
        if m == "halt":
            self._halt(_signed(self.regs[0]))
        if m in BRANCH_CONDITIONS:
            assert branch_disp is not None
            if BRANCH_CONDITIONS[m](self.n, self.z, self.v, self.c):
                self.pc = (self.pc + branch_disp) & WORD
            return
        if m == "jmp":
            self.pc = self._address(ops[0])
            return
        if m == "calls":
            self._calls(ops)
            return
        if m == "ret":
            self._ret()
            return
        handler = getattr(self, f"_op_{m}", None)
        if handler is None:
            raise Trap(TrapKind.ILLEGAL_INSTRUCTION, m)
        handler(ops, info)

    # moves -------------------------------------------------------------------------

    def _op_movl(self, ops, info):
        value = self._read(ops[0], 4)
        self._write(ops[1], value, 4)
        self._set_nz(value)

    def _op_movw(self, ops, info):
        value = self._read(ops[0], 2)
        self._write(ops[1], value, 2)
        self._set_nz(value, 2)

    def _op_movb(self, ops, info):
        value = self._read(ops[0], 1)
        self._write(ops[1], value, 1)
        self._set_nz(value, 1)

    def _op_movzbl(self, ops, info):
        value = self._read(ops[0], 1) & 0xFF
        self._write(ops[1], value, 4)
        self._set_nz(value)

    def _op_cvtbl(self, ops, info):
        value = _signed(self._read(ops[0], 1), 8) & WORD
        self._write(ops[1], value, 4)
        self._set_nz(value)

    def _op_movzwl(self, ops, info):
        value = self._read(ops[0], 2) & 0xFFFF
        self._write(ops[1], value, 4)
        self._set_nz(value)

    def _op_cvtwl(self, ops, info):
        value = _signed(self._read(ops[0], 2), 16) & WORD
        self._write(ops[1], value, 4)
        self._set_nz(value)

    def _op_moval(self, ops, info):
        address = self._address(ops[0])
        self._write(ops[1], address, 4)
        self._set_nz(address)

    def _op_pushl(self, ops, info):
        self._push(self._read(ops[0], 4))

    def _op_clrl(self, ops, info):
        self._write(ops[0], 0, 4)
        self.n, self.z, self.v = False, True, False

    # alu ----------------------------------------------------------------------------

    def _op_tstl(self, ops, info):
        self._set_nz(self._read(ops[0], 4))
        self.v = self.c = False

    def _op_incl(self, ops, info):
        value = (self._read(ops[0], 4) + 1) & WORD
        self._write(ops[0], value, 4)
        self._set_nz(value)

    def _op_decl(self, ops, info):
        value = (self._read(ops[0], 4) - 1) & WORD
        self._write(ops[0], value, 4)
        self._set_nz(value)

    def _op_mnegl(self, ops, info):
        value = (-self._read(ops[0], 4)) & WORD
        self._write(ops[1], value, 4)
        self._set_nz(value)

    def _op_mcoml(self, ops, info):
        value = (~self._read(ops[0], 4)) & WORD
        self._write(ops[1], value, 4)
        self._set_nz(value)

    def _binary(self, ops, fn, three: bool):
        a = self._read(ops[0], 4)
        b = self._read(ops[1], 4)
        result = fn(b, a) & WORD  # two-operand form: dst = dst op src
        self._write(ops[2] if three else ops[1], result, 4)
        self._set_nz(result)
        return a, b, result

    def _op_addl2(self, ops, info):
        a, b, r = self._binary(ops, lambda x, y: x + y, three=False)
        self.c = a + b > WORD
        self.v = bool(~(a ^ b) & (a ^ r) & SIGN)

    def _op_addl3(self, ops, info):
        a, b, r = self._binary(ops, lambda x, y: x + y, three=True)
        self.c = a + b > WORD
        self.v = bool(~(a ^ b) & (a ^ r) & SIGN)

    def _op_subl2(self, ops, info):
        # SUBL2 sub, dif: dif = dif - sub
        a, b, r = self._binary(ops, lambda dif, sub: dif - sub, three=False)
        self.c = b < a  # borrow
        self.v = bool((b ^ a) & (b ^ r) & SIGN)

    def _op_subl3(self, ops, info):
        # SUBL3 sub, min, dif: dif = min - sub
        a, b, r = self._binary(ops, lambda minuend, sub: minuend - sub, three=True)
        self.c = b < a
        self.v = bool((b ^ a) & (b ^ r) & SIGN)

    def _op_mull2(self, ops, info):
        self._binary(ops, lambda x, y: _signed(x) * _signed(y), three=False)

    def _op_mull3(self, ops, info):
        self._binary(ops, lambda x, y: _signed(x) * _signed(y), three=True)

    def _divide(self, divisor: int, dividend: int) -> int:
        divisor_s, dividend_s = _signed(divisor), _signed(dividend)
        if divisor_s == 0:
            raise Trap(TrapKind.ILLEGAL_INSTRUCTION, "integer divide by zero", pc=self.pc)
        return int(dividend_s / divisor_s)  # C truncation toward zero

    def _op_divl2(self, ops, info):
        # DIVL2 divisor, quo: quo = quo / divisor
        self._binary(ops, lambda quo, divisor: self._divide(divisor, quo), three=False)

    def _op_divl3(self, ops, info):
        # DIVL3 divisor, dividend, quo
        self._binary(ops, lambda dividend, divisor: self._divide(divisor, dividend), three=True)

    def _op_bisl2(self, ops, info):
        self._binary(ops, lambda x, y: x | y, three=False)

    def _op_bisl3(self, ops, info):
        self._binary(ops, lambda x, y: x | y, three=True)

    def _op_xorl2(self, ops, info):
        self._binary(ops, lambda x, y: x ^ y, three=False)

    def _op_xorl3(self, ops, info):
        self._binary(ops, lambda x, y: x ^ y, three=True)

    def _op_andl2(self, ops, info):
        self._binary(ops, lambda x, y: x & y, three=False)

    def _op_andl3(self, ops, info):
        self._binary(ops, lambda x, y: x & y, three=True)

    def _op_ashl(self, ops, info):
        count = _signed(self._read(ops[0], 1), 8)
        value = self._read(ops[1], 4)
        # shift amounts are masked to 5 bits, matching the RISC I shifter,
        # so out-of-range C shifts behave identically on both targets
        if count >= 0:
            result = (value << (count & 31)) & WORD
        else:
            result = (_signed(value) >> ((-count) & 31)) & WORD
        self._write(ops[2], result, 4)
        self._set_nz(result)

    def _compare(self, a: int, b: int, width: int) -> None:
        a_s, b_s = _signed(a, width * 8), _signed(b, width * 8)
        self.z = a == b
        self.n = a_s < b_s
        self.c = (a & ((1 << (8 * width)) - 1)) < (b & ((1 << (8 * width)) - 1))
        self.v = False

    def _op_cmpl(self, ops, info):
        self._compare(self._read(ops[0], 4), self._read(ops[1], 4), 4)

    def _op_cmpw(self, ops, info):
        self._compare(self._read(ops[0], 2), self._read(ops[1], 2), 2)

    def _op_cmpb(self, ops, info):
        self._compare(self._read(ops[0], 1), self._read(ops[1], 1), 1)

    # procedure linkage -------------------------------------------------------------------

    @staticmethod
    def _mask_registers(mask: int) -> list[int]:
        return [reg for reg in range(2, 12) if mask & (1 << reg)]

    def _calls(self, ops: list[_Operand]) -> None:
        nargs = self._read(ops[0], 4)
        target = self._address(ops[1])
        if self._trace_flow:
            self.tracer.call(self.stats.cycles, self.pc, self._depth + 1, target)
        refs_before = self.stats.data_references
        mask = self.memory.read(target, 2)
        self.stats.data_reads += 1
        sp_at_call = self.regs[SP]
        self._push(nargs)  # arg count sits directly below the args
        for reg in self._mask_registers(mask):
            self._push(self.regs[reg])
        self._push(self.regs[AP])
        self._push(self.regs[FP])
        self._push(self.pc)  # return address
        self._push(mask)
        self.regs[FP] = self.regs[SP]
        self.regs[AP] = (sp_at_call - 4) & WORD  # the argcount slot
        self.pc = target + 2
        self.stats.calls += 1
        self._depth += 1
        self.stats.max_call_depth = max(self.stats.max_call_depth, self._depth)
        self.stats.call_linkage_refs += self.stats.data_references - refs_before

    def _ret(self) -> None:
        if self._trace_flow:
            self.tracer.ret(self.stats.cycles, self.pc, self._depth - 1)
        refs_before = self.stats.data_references
        self.regs[SP] = self.regs[FP]
        mask = self._pop()
        self.pc = self._pop()
        self.regs[FP] = self._pop()
        self.regs[AP] = self._pop()
        for reg in reversed(self._mask_registers(mask)):
            self.regs[reg] = self._pop()
        nargs = self._pop()
        self.regs[SP] = (self.regs[SP] + 4 * nargs) & WORD
        self.stats.returns += 1
        self._depth -= 1
        self.stats.call_linkage_refs += self.stats.data_references - refs_before
