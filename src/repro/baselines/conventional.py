"""The "RISC I without register windows" model (experiments E7/E11).

The paper's central architectural bet is that overlapped register windows
make procedure calls nearly free.  The natural ablation is the same ISA
with a *conventional* calling convention: every call saves the registers
the callee will use (plus the return address and frame linkage) to a
memory stack and every return restores them.

Rather than maintaining a second code generator, the ablation reuses a
measured RISC I run and re-prices its calls: each call/return pair is
charged the loads, stores and bookkeeping instructions a conventional
convention would execute, while the window overflow/underflow costs the
real run paid are credited back.  This per-call bookkeeping mirrors how
the paper itself argued the comparison.  The number of registers saved
per call is a parameter (the paper's own studies put the typical saved
set at around 8 registers; the sensitivity sweep in benchmark E11 covers
4..12).
"""

from __future__ import annotations

import dataclasses

from repro.core.stats import ExecutionStats
from repro.core.timing import RiscTiming


@dataclasses.dataclass(frozen=True)
class ConventionalCallModel:
    """Cost model for a conventional (non-window) calling convention."""

    #: registers saved at entry and restored at exit of each procedure
    saved_registers: int = 8
    #: extra bookkeeping instructions per call/return pair (frame pointer
    #: adjust, return-address shuffle)
    bookkeeping_instructions: int = 4
    timing: RiscTiming = dataclasses.field(default_factory=RiscTiming)

    @property
    def extra_cycles_per_call(self) -> int:
        """Cycles a call/return pair pays beyond the windowed version."""
        memory_ops = 2 * self.saved_registers  # save at entry, restore at exit
        return memory_ops * self.timing.memory_op_cycles + self.bookkeeping_instructions

    @property
    def extra_memory_refs_per_call(self) -> int:
        return 2 * self.saved_registers

    def reprice(self, stats: ExecutionStats) -> "ConventionalProjection":
        """Project a windowed run's cost onto the conventional convention."""
        call_pairs = stats.calls
        extra_cycles = call_pairs * self.extra_cycles_per_call
        extra_refs = call_pairs * self.extra_memory_refs_per_call
        # credit back what the windowed run paid for overflow handling
        cycles = stats.cycles - stats.overflow_cycles + extra_cycles
        # each spilled register was one store, each filled one load
        refs = (
            stats.data_references
            - (stats.spilled_registers + stats.filled_registers)
            + extra_refs
        )
        return ConventionalProjection(
            cycles=cycles,
            data_references=refs,
            windowed_cycles=stats.cycles,
            windowed_refs=stats.data_references,
            saved_registers=self.saved_registers,
        )


@dataclasses.dataclass(frozen=True)
class ConventionalProjection:
    """Outcome of repricing a run under the conventional convention."""

    cycles: int
    data_references: int
    windowed_cycles: int
    windowed_refs: int
    saved_registers: int

    @property
    def slowdown(self) -> float:
        """How much slower the conventional convention is (>1 favors windows)."""
        return self.cycles / self.windowed_cycles if self.windowed_cycles else 1.0

    @property
    def traffic_ratio(self) -> float:
        return (
            self.data_references / self.windowed_refs if self.windowed_refs else 1.0
        )
