"""Code-size and cycle estimators for the M68000 and Z8002 baselines.

The paper's benchmark tables include the Motorola 68000 and Zilog Z8002
alongside the VAX.  Building full simulators for both would not change the
experiment's character — what the comparison needs is each machine's code
density and per-operation cost on compiled C.  These estimators therefore
model both machines at the IR level:

* **size**: static bytes per IR operation, from each machine's instruction
  formats (68000: 16-bit words, most compiler-emitted instructions are one
  word plus 0-2 extension words; Z8002: likewise 16-bit based, slightly
  denser addressing for the small cases);
* **time**: dynamic IR-operation counts from :mod:`repro.cc.irvm`
  multiplied by published per-instruction cycle costs (68000 register ops
  4 cycles, memory operand +8, MUL ~70, DIV ~158, JSR/LINK/MOVEM call
  sequences tens of cycles; Z8002 similar structure, faster calls, slower
  clock).

This substitution is recorded in DESIGN.md §5.  Like the paper itself, the
point is the *shape* — both chips sit between the VAX and RISC I on time,
with denser code than RISC I.
"""

from __future__ import annotations

import dataclasses

from repro.cc import ir
from repro.cc.irvm import IRCounts
from repro.cc.regalloc import defs_uses


@dataclasses.dataclass(frozen=True)
class MachineModel:
    """Per-IR-operation byte and cycle costs for one 16-bit-era machine."""

    name: str
    clock_mhz: float
    #: op key (see IRCounts.ops) -> (bytes, cycles)
    costs: dict
    #: extra cost of the procedure call/return linkage, per call
    call_bytes: int
    call_cycles: int

    def cycle_ns(self) -> float:
        return 1000.0 / self.clock_mhz

    # -- static size ------------------------------------------------------------

    def code_size(self, program: ir.IRProgram) -> int:
        """Estimated program bytes for this machine."""
        total = 0
        for func in program.functions:
            total += self.call_bytes  # prologue/epilogue (LINK/UNLK/RTS...)
            for instr in func.instrs:
                total += self._bytes_of(instr)
        return total

    def _bytes_of(self, instr: ir.Instr) -> int:
        key = _op_key(instr)
        if key is None:
            return 0
        return self.costs[key][0]

    # -- dynamic time ------------------------------------------------------------

    def cycles(self, counts: IRCounts) -> int:
        """Estimated cycles for a run with the given dynamic profile."""
        total = 0
        for key, count in counts.ops.items():
            if key.startswith("stmt:"):
                continue  # statement markers are profiling-only
            total += self.costs[key][1] * count
        total += counts.ops.get("call", 0) * self.call_cycles
        return total

    def milliseconds(self, counts: IRCounts) -> float:
        return self.cycles(counts) * self.cycle_ns() / 1e6


def _op_key(instr: ir.Instr) -> str | None:
    if isinstance(instr, ir.Label):
        return None
    if isinstance(instr, ir.Const):
        return "const"
    if isinstance(instr, ir.Move):
        return "move"
    if isinstance(instr, ir.GetVar):
        return "getvar"
    if isinstance(instr, ir.SetVar):
        return "setvar"
    if isinstance(instr, ir.AddrVar):
        return "addrvar"
    if isinstance(instr, ir.UnOp):
        return "unop"
    if isinstance(instr, ir.BinOp):
        return f"binop:{instr.op}"
    if isinstance(instr, ir.SetCmp):
        return "setcmp"
    if isinstance(instr, ir.Load):
        return f"load:{instr.width}"
    if isinstance(instr, ir.Store):
        return f"store:{instr.width}"
    if isinstance(instr, ir.Call):
        return "call"
    if isinstance(instr, ir.Jump):
        return "jump"
    if isinstance(instr, ir.CBranch):
        return "branch"
    if isinstance(instr, ir.Ret):
        return "ret"
    return None


def _costs(**kwargs) -> dict:
    base = {
        "const": kwargs["const"],
        "move": kwargs["move"],
        "getvar": kwargs["getvar"],
        "setvar": kwargs["setvar"],
        "addrvar": kwargs["addrvar"],
        "unop": kwargs["unop"],
        "setcmp": kwargs["setcmp"],
        "load:1": kwargs["load"],
        "load:2": kwargs["load"],
        "load:4": kwargs["load"],
        "store:1": kwargs["store"],
        "store:2": kwargs["store"],
        "store:4": kwargs["store"],
        "call": kwargs["call"],
        "ret": kwargs["ret"],
        "jump": kwargs["jump"],
        "branch": kwargs["branch"],
    }
    for op in ("+", "-", "&", "|", "^", "<<", ">>"):
        base[f"binop:{op}"] = kwargs["alu"]
    base["binop:*"] = kwargs["mul"]
    base["binop:/"] = kwargs["div"]
    base["binop:%"] = kwargs["div"]
    return base


#: Motorola 68000 at 8 MHz.  Sources of the constants: the 68000 user's
#: manual timing tables (register ALU 4 cycles, memory-operand long
#: accesses ~12-20, MULS ~70, DIVS ~158, JSR+LINK+MOVEM call overhead).
M68000 = MachineModel(
    name="M68000",
    clock_mhz=8.0,
    costs=_costs(
        const=(4, 8),      # MOVEQ / MOVE.L #imm
        move=(2, 4),       # MOVE.L Dn,Dm
        getvar=(4, 16),    # MOVE.L d16(An)/abs,Dn
        setvar=(4, 16),
        addrvar=(4, 8),    # LEA
        unop=(2, 6),
        alu=(4, 12),       # ALU with one memory/long operand on average
        mul=(4, 70),       # MULS (and a runtime call for 32-bit results)
        div=(4, 158),      # DIVS
        setcmp=(8, 18),    # CMP + Scc + EXT
        load=(4, 16),
        store=(4, 16),
        call=(6, 26),      # arg pushes + JSR per-arg share
        ret=(2, 16),       # RTS
        jump=(4, 10),      # BRA.W
        branch=(6, 14),    # CMP + Bcc
    ),
    call_bytes=12,         # LINK/UNLK/RTS + entry
    call_cycles=62,        # LINK + MOVEM save/restore + RTS
)

#: Zilog Z8002 at 6 MHz.  16-bit machine: denser code for small operands
#: but 32-bit arithmetic needs register pairs (extra cycles), faster call
#: instruction than the 68000's LINK/MOVEM sequence.
Z8002 = MachineModel(
    name="Z8002",
    clock_mhz=6.0,
    costs=_costs(
        const=(4, 7),
        move=(2, 3),
        getvar=(4, 12),
        setvar=(4, 12),
        addrvar=(4, 8),
        unop=(2, 7),
        alu=(4, 11),       # 32-bit ops via register pairs
        mul=(4, 70),
        div=(4, 107),
        setcmp=(8, 16),
        load=(4, 12),
        store=(4, 12),
        call=(4, 18),
        ret=(2, 13),
        jump=(4, 7),
        branch=(6, 13),
    ),
    call_bytes=10,
    call_cycles=40,
)

ALL_MODELS = (M68000, Z8002)
