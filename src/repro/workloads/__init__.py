"""The benchmark suite.

Mini-C re-implementations of the paper's C benchmarks, each paired with a
pure-Python reference implementation so every run is *verified*, not just
timed.  ``PARAM_*`` globals in the sources are tunable through
:meth:`Workload.source`, letting the test suite run small instances and
the benchmark harness run paper-scale ones.

Substitutions from the paper's exact programs (Baskett's Puzzle, the real
sed) are documented in DESIGN.md §5; the suite preserves each benchmark's
workload *class* (call-heavy recursion, byte scanning, bit manipulation,
pointer chasing).
"""

from __future__ import annotations

import dataclasses
import re
import sys
from importlib import resources
from typing import Callable

sys.setrecursionlimit(100_000)  # reference implementations recurse deeply

_PARAM_RE = "int PARAM_{name} = {old};"


@dataclasses.dataclass(frozen=True)
class Workload:
    """One benchmark program plus its verification oracle."""

    name: str
    filename: str
    description: str
    #: "call-heavy", "loop-heavy" or "mixed" — used by the window and
    #: call-cost experiments to pick representative programs.
    category: str
    default_params: dict
    reference: Callable[..., str]
    #: parameters to use for paper-scale benchmark runs
    bench_params: dict = dataclasses.field(default_factory=dict)

    def source(self, **overrides) -> str:
        """The mini-C source with any ``PARAM_*`` overrides applied."""
        text = (
            resources.files("repro.workloads")
            .joinpath(f"programs/{self.filename}")
            .read_text()
        )
        params = {**self.default_params, **overrides}
        for name, value in params.items():
            pattern = rf"int PARAM_{name} = -?\d+;"
            replacement = f"int PARAM_{name} = {value};"
            text, count = re.subn(pattern, replacement, text)
            if count != 1:
                raise KeyError(f"{self.filename}: parameter {name!r} not found")
        return text

    def expected_output(self, **overrides) -> str:
        params = {**self.default_params, **overrides}
        return self.reference(**params)


# -- reference implementations ----------------------------------------------------


def _ref_ackermann(M: int, N: int) -> str:
    def ack(m: int, n: int) -> int:
        if m == 0:
            return n + 1
        if n == 0:
            return ack(m - 1, 1)
        return ack(m - 1, ack(m, n - 1))

    return f"{ack(M, N)}\n"


def _rand_stream(seed: int):
    while True:
        seed = (seed * 1309 + 13849) % 65536
        yield seed


def _ref_qsort(N: int) -> str:
    rand = _rand_stream(74755)
    data = [next(rand) for _ in range(N)]
    data.sort()
    checksum = sum(data[i] % 1000 for i in range(0, N, 37))
    return f"1 {checksum}\n"


def _ref_towers(DISKS: int) -> str:
    return f"{2 ** DISKS - 1}\n"


_QUEENS_SOLUTIONS = {4: 2, 5: 10, 6: 4, 7: 40, 8: 92, 9: 352, 10: 724}


def _ref_queens(N: int) -> str:
    return f"{_QUEENS_SOLUTIONS[N]}\n"


_SED_TEXT = (
    "the quick brown fox jumps over the lazy dog while "
    "the cat watches the bird and the fish in the pond; "
    "then the fox returns to the den and the day ends"
)


def _ref_sed(REPS: int) -> str:
    transformed = _SED_TEXT.replace("the", "THE")
    count = _SED_TEXT.count("the")
    return f"{transformed}\n{count * REPS}\n"


_SEARCH_TEXT = (
    "here is a sample text string with several sample "
    "occurrences of the sample pattern inside a sample"
)


def _ref_string_search(REPS: int) -> str:
    count = sum(
        1
        for i in range(len(_SEARCH_TEXT))
        if _SEARCH_TEXT.startswith("sample", i)
    )
    return f"{count * REPS}\n"


def _ref_bit_test(VALUES: int) -> str:
    total = sum(bin((v * 2654435) & 0xFFFFFFFF).count("1") for v in range(VALUES))
    return f"{total}\n"


def _ref_linked_list(NODES: int) -> str:
    rand = _rand_stream(12345)
    values = sorted(next(rand) % 1000 for _ in range(NODES))
    return f"1 {NODES} {sum(values) % 10000}\n"


def _ref_bit_matrix(N: int, REPS: int) -> str:
    total = 0
    for _ in range(REPS):
        rows = []
        for i in range(N):
            h = (i << 5) ^ (i << 2) ^ i
            h ^= h << 7
            rows.append((h | (1 << i)) & ((1 << N) - 1))
        for k in range(N):
            for i in range(N):
                if (rows[i] >> k) & 1:
                    rows[i] |= rows[k]
        total += sum(bin(row & ((1 << N) - 1)).count("1") for row in rows)
    return f"{total}\n"


def _ref_quicksort_i(N: int) -> str:
    data = sorted(((i << 7) ^ (i << 3) ^ (1000 - i)) & 1023 for i in range(N))
    return f"1 {data[0]} {data[-1]}\n"


def _ref_call_overhead(CALLS: int) -> str:
    return f"{sum(range(CALLS))}\n"


# -- the suite ----------------------------------------------------------------------

ALL_WORKLOADS: dict[str, Workload] = {
    w.name: w
    for w in (
        Workload(
            name="ackermann",
            filename="ackermann.rc",
            description="Ackermann(3, n) — extreme call intensity",
            category="call-heavy",
            default_params={"M": 3, "N": 3},
            bench_params={"M": 3, "N": 5},
            reference=_ref_ackermann,
        ),
        Workload(
            name="qsort",
            filename="qsort.rc",
            description="recursive quicksort of pseudo-random data",
            category="mixed",
            default_params={"N": 200},
            bench_params={"N": 1000},
            reference=_ref_qsort,
        ),
        Workload(
            name="towers",
            filename="towers.rc",
            description="Towers of Hanoi — pure recursion",
            category="call-heavy",
            default_params={"DISKS": 10},
            bench_params={"DISKS": 14},
            reference=_ref_towers,
        ),
        Workload(
            name="puzzle_subscript",
            filename="puzzle_subscript.rc",
            description="recursive search, array-subscript variant",
            category="mixed",
            default_params={"N": 6},
            bench_params={"N": 8},
            reference=_ref_queens,
        ),
        Workload(
            name="puzzle_pointer",
            filename="puzzle_pointer.rc",
            description="recursive search, pointer variant",
            category="mixed",
            default_params={"N": 6},
            bench_params={"N": 8},
            reference=_ref_queens,
        ),
        Workload(
            name="sed",
            filename="sed.rc",
            description="stream-editor substitution kernel",
            category="loop-heavy",
            default_params={"REPS": 5},
            bench_params={"REPS": 40},
            reference=_ref_sed,
        ),
        Workload(
            name="string_search_e",
            filename="string_search_e.rc",
            description="kernel E: naive substring search",
            category="loop-heavy",
            default_params={"REPS": 10},
            bench_params={"REPS": 80},
            reference=_ref_string_search,
        ),
        Workload(
            name="bit_test_f",
            filename="bit_test_f.rc",
            description="kernel F: bit counting with shift/mask",
            category="loop-heavy",
            default_params={"VALUES": 300},
            bench_params={"VALUES": 2000},
            reference=_ref_bit_test,
        ),
        Workload(
            name="linked_list_h",
            filename="linked_list_h.rc",
            description="kernel H: sorted linked-list insertion",
            category="mixed",
            default_params={"NODES": 200},
            bench_params={"NODES": 800},
            reference=_ref_linked_list,
        ),
        Workload(
            name="bit_matrix_k",
            filename="bit_matrix_k.rc",
            description="kernel K: bit-matrix transitive closure",
            category="loop-heavy",
            default_params={"N": 12, "REPS": 2},
            bench_params={"N": 20, "REPS": 6},
            reference=_ref_bit_matrix,
        ),
        Workload(
            name="quicksort_i",
            filename="quicksort_i.rc",
            description="kernel I: short quicksort",
            category="mixed",
            default_params={"N": 100},
            bench_params={"N": 250},
            reference=_ref_quicksort_i,
        ),
        Workload(
            name="call_overhead",
            filename="call_overhead.rc",
            description="null-procedure-call microbenchmark (E7)",
            category="call-heavy",
            default_params={"CALLS": 500},
            bench_params={"CALLS": 5000},
            reference=_ref_call_overhead,
        ),
    )
}

#: The programs used for the paper's Table-style benchmark comparisons
#: (everything except the E7 microbenchmark).
BENCHMARK_SUITE = [name for name in ALL_WORKLOADS if name != "call_overhead"]


def parse_workload_spec(spec: str) -> tuple[str, dict[str, int]]:
    """Parse a ``NAME[:ARG]`` workload spec from a CLI.

    ``ARG`` is either a bare integer (allowed when the workload has
    exactly one parameter) or ``KEY=VALUE[,KEY=VALUE...]`` naming
    ``PARAM_*`` globals.  Returns ``(name, overrides)``.  Raises
    :class:`ValueError` with a message suitable for ``parser.error`` on an
    unknown workload, unknown parameter, or malformed argument.
    """
    name, _, arg = spec.partition(":")
    workload = ALL_WORKLOADS.get(name)
    if workload is None:
        known = ", ".join(sorted(ALL_WORKLOADS))
        raise ValueError(f"unknown workload {name!r} (choose from: {known})")
    if not arg:
        return name, {}
    overrides: dict[str, int] = {}
    params = workload.default_params
    for part in arg.split(","):
        if not part.strip():
            raise ValueError(
                f"workload spec {spec!r}: empty argument part "
                f"(stray or trailing comma)"
            )
        key, eq, value = part.partition("=")
        if not eq:
            if len(params) != 1:
                raise ValueError(
                    f"workload {name!r} has parameters {sorted(params)}; "
                    f"use {name}:KEY=VALUE"
                )
            key, value = next(iter(params)), part
        if key not in params:
            raise ValueError(
                f"workload {name!r} has no parameter {key!r} (has: {sorted(params)})"
            )
        if key in overrides:
            raise ValueError(
                f"workload spec {spec!r}: duplicate parameter {key!r}"
            )
        try:
            overrides[key] = int(value)
        except ValueError:
            raise ValueError(f"workload argument {part!r}: value must be an integer") from None
    return name, overrides
